"""Tableau minimization (computing minimal tableaux / cores).

``T'`` is a *minimal tableau* for the query ``(D, X)`` when ``T'`` is
equivalent to ``Tab(D, X)`` and not equivalent to any tableau with fewer
rows.  Lemma 3.4 (Aho, Sagiv & Ullman): two minimal tableaux for the same
query are isomorphic, so minimization is well defined up to isomorphism.

The classical fact used here is that a tableau is equivalent to one of its
subtableaux iff there is a containment mapping onto that subtableau (the
reverse mapping is the identity on the remaining rows), and that greedily
removing redundant rows terminates in a minimum-size equivalent subtableau
(the *core*).

The implementation is incremental on the interned-symbol kernel
(:mod:`repro.tableau.kernel`): one compiled form of the *original* tableau —
with its per-column occurrence bitmask indexes — is shared across every
row-removal attempt, candidate subtableaux are just row bitmasks, and when a
containment mapping ``h : T → T - {r}`` is found, **every** active row
outside the image of ``h`` is removed at once (``h`` is a containment mapping
onto the image subtableau, and the identity maps the image back), so one
successful search can retire many rows instead of one.  The pre-kernel
one-row-at-a-time implementation is retained in
:mod:`repro.tableau.reference` as the property-test oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .kernel import find_row_mapping, iter_bits
from .tableau import Tableau

__all__ = ["MinimizationResult", "minimize_tableau", "is_minimal_tableau"]


@dataclass(frozen=True)
class MinimizationResult:
    """The outcome of minimizing a tableau.

    ``kept_rows`` holds the indices (into the original tableau) of the rows of
    the minimal subtableau; ``removed_rows`` the redundant rows in the order
    they were eliminated.
    """

    original: Tableau
    minimal: Tableau
    kept_rows: Tuple[int, ...]
    removed_rows: Tuple[int, ...]

    @property
    def removed_count(self) -> int:
        """How many rows minimization eliminated."""
        return len(self.removed_rows)


def minimize_tableau(tableau: Tableau) -> MinimizationResult:
    """Compute a minimal tableau equivalent to ``tableau``.

    Active rows are examined in ascending order; when the active subtableau
    has a containment mapping into itself-minus-one-row, all active rows
    outside the mapping's image are dropped together.  The result is a
    subtableau of the input, so the identity is a containment mapping back
    and equivalence is guaranteed by construction.
    """
    n_rows = len(tableau)
    if n_rows <= 1:
        return MinimizationResult(
            original=tableau,
            minimal=tableau,
            kept_rows=tuple(range(n_rows)),
            removed_rows=(),
        )

    compiled = tableau.compiled()
    active = compiled.all_rows_mask
    removed: List[int] = []

    changed = True
    while changed and active.bit_count() > 1:
        changed = False
        for row_index in iter_bits(active):
            found = find_row_mapping(
                compiled,
                compiled,
                source_rows=active,
                target_rows=active & ~(1 << row_index),
            )
            if found is None:
                continue
            row_image, _ = found
            image = 0
            for target_index in row_image.values():
                image |= 1 << target_index
            removed.extend(iter_bits(active & ~image))
            active = image
            changed = True
            break

    kept = tuple(iter_bits(active))
    minimal = tableau if not removed else tableau.subtableau(kept)
    return MinimizationResult(
        original=tableau,
        minimal=minimal,
        kept_rows=kept,
        removed_rows=tuple(removed),
    )


def is_minimal_tableau(tableau: Tableau) -> bool:
    """True when no proper subtableau is equivalent to ``tableau``."""
    n_rows = len(tableau)
    if n_rows <= 1:
        return True
    compiled = tableau.compiled()
    full = compiled.all_rows_mask
    for row_index in range(n_rows):
        if (
            find_row_mapping(
                compiled,
                compiled,
                source_rows=full,
                target_rows=full & ~(1 << row_index),
            )
            is not None
        ):
            return False
    return True
