"""Tableau minimization (computing minimal tableaux / cores).

``T'`` is a *minimal tableau* for the query ``(D, X)`` when ``T'`` is
equivalent to ``Tab(D, X)`` and not equivalent to any tableau with fewer
rows.  Lemma 3.4 (Aho, Sagiv & Ullman): two minimal tableaux for the same
query are isomorphic, so minimization is well defined up to isomorphism.

The classical fact used here is that a tableau is equivalent to one of its
subtableaux iff there is a containment mapping onto that subtableau (the
reverse mapping is the identity on the remaining rows), and that greedily
removing one redundant row at a time terminates in a minimum-size equivalent
subtableau (the *core*).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .containment import find_containment_mapping, has_containment_mapping
from .tableau import Tableau

__all__ = ["MinimizationResult", "minimize_tableau", "is_minimal_tableau"]


@dataclass(frozen=True)
class MinimizationResult:
    """The outcome of minimizing a tableau.

    ``kept_rows`` holds the indices (into the original tableau) of the rows of
    the minimal subtableau; ``removed_rows`` the redundant rows in the order
    they were eliminated.
    """

    original: Tableau
    minimal: Tableau
    kept_rows: Tuple[int, ...]
    removed_rows: Tuple[int, ...]

    @property
    def removed_count(self) -> int:
        """How many rows minimization eliminated."""
        return len(self.removed_rows)


def minimize_tableau(tableau: Tableau) -> MinimizationResult:
    """Compute a minimal tableau equivalent to ``tableau``.

    Rows are examined in order; a row is dropped when the current tableau has
    a containment mapping into the tableau without that row.  The result is a
    subtableau of the input, so the identity is a containment mapping back and
    equivalence is guaranteed by construction.
    """
    kept: List[int] = list(range(len(tableau)))
    removed: List[int] = []
    current = tableau

    changed = True
    while changed:
        changed = False
        for position in range(len(current)):
            candidate = current.without_row(position)
            if len(candidate) == 0:
                continue
            if has_containment_mapping(current, candidate):
                removed.append(kept.pop(position))
                current = candidate
                changed = True
                break

    return MinimizationResult(
        original=tableau,
        minimal=current,
        kept_rows=tuple(kept),
        removed_rows=tuple(removed),
    )


def is_minimal_tableau(tableau: Tableau) -> bool:
    """True when no proper subtableau is equivalent to ``tableau``."""
    for position in range(len(tableau)):
        candidate = tableau.without_row(position)
        if len(candidate) == 0:
            continue
        if has_containment_mapping(tableau, candidate):
            return False
    return True
