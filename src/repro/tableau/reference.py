"""Brute-force reference implementations of the tableau operations.

These are the pre-kernel implementations of containment-mapping search and
minimization, retained verbatim as the *executable specification* for the
interned-symbol kernel (:mod:`repro.tableau.kernel`): the property tests
generate random small tableaux and require the kernel-backed public functions
to agree with these on every instance.

They operate directly on :class:`~repro.tableau.variables.Variable` objects
with dictionary bookkeeping — clear, slow, and independent of the interning,
bitmask indexes and incremental minimization the kernel introduces.  Do not
"optimize" this module; its value is being an oracle that shares no code with
the fast path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .containment import ContainmentMapping, _check_compatible
from .minimize import MinimizationResult
from .tableau import Tableau
from .variables import Variable

__all__ = [
    "find_containment_mapping_reference",
    "has_containment_mapping_reference",
    "minimize_tableau_reference",
    "is_minimal_tableau_reference",
]


def find_containment_mapping_reference(
    source: Tableau, target: Tableau
) -> Optional[ContainmentMapping]:
    """Backtracking containment-mapping search over ``Variable`` dicts."""
    _check_compatible(source, target)
    if len(source) == 0:
        return ContainmentMapping(row_mapping=(), symbol_mapping={})
    if len(target) == 0:
        return None

    columns = source.columns
    n_columns = len(columns)
    source_rows = [row.cells for row in source.rows]
    target_rows = [row.cells for row in target.rows]

    def locally_feasible(src: Tuple[Variable, ...], dst: Tuple[Variable, ...]) -> bool:
        local: Dict[Variable, Variable] = {}
        for position in range(n_columns):
            symbol = src[position]
            image = dst[position]
            if symbol.is_distinguished and symbol != image:
                return False
            seen = local.get(symbol)
            if seen is None:
                local[symbol] = image
            elif seen != image:
                return False
        return True

    candidates: List[List[int]] = []
    for src in source_rows:
        feasible = [
            target_index
            for target_index, dst in enumerate(target_rows)
            if locally_feasible(src, dst)
        ]
        if not feasible:
            return None
        candidates.append(feasible)

    order = sorted(range(len(source_rows)), key=lambda index: len(candidates[index]))
    assignment: Dict[int, int] = {}
    symbol_mapping: Dict[Variable, Variable] = {}

    def assign(position: int) -> bool:
        if position == len(order):
            return True
        source_index = order[position]
        src = source_rows[source_index]
        for target_index in candidates[source_index]:
            dst = target_rows[target_index]
            added: List[Variable] = []
            conflict = False
            for column in range(n_columns):
                symbol = src[column]
                image = dst[column]
                existing = symbol_mapping.get(symbol)
                if existing is None:
                    symbol_mapping[symbol] = image
                    added.append(symbol)
                elif existing != image:
                    conflict = True
                    break
            if not conflict:
                assignment[source_index] = target_index
                if assign(position + 1):
                    return True
                del assignment[source_index]
            for symbol in added:
                del symbol_mapping[symbol]
        return False

    if not assign(0):
        return None
    row_mapping = tuple(assignment[index] for index in range(len(source_rows)))
    return ContainmentMapping(row_mapping=row_mapping, symbol_mapping=dict(symbol_mapping))


def has_containment_mapping_reference(source: Tableau, target: Tableau) -> bool:
    """True when the reference search finds a containment mapping."""
    return find_containment_mapping_reference(source, target) is not None


def minimize_tableau_reference(tableau: Tableau) -> MinimizationResult:
    """One-row-at-a-time greedy minimization (the classical core algorithm)."""
    kept: List[int] = list(range(len(tableau)))
    removed: List[int] = []
    current = tableau

    changed = True
    while changed:
        changed = False
        for position in range(len(current)):
            candidate = current.without_row(position)
            if len(candidate) == 0:
                continue
            if has_containment_mapping_reference(current, candidate):
                removed.append(kept.pop(position))
                current = candidate
                changed = True
                break

    return MinimizationResult(
        original=tableau,
        minimal=current,
        kept_rows=tuple(kept),
        removed_rows=tuple(removed),
    )


def is_minimal_tableau_reference(tableau: Tableau) -> bool:
    """True when no single-row removal admits a containment mapping back."""
    for position in range(len(tableau)):
        candidate = tableau.without_row(position)
        if len(candidate) == 0:
            continue
        if has_containment_mapping_reference(tableau, candidate):
            return False
    return True
