"""Tableau subsystem: standard tableaux, containment mappings, minimization,
canonical schemas and canonical connections (Section 3.4 of the paper)."""

from .variables import Variable, VariableKind, distinguished, shared, unique
from .tableau import Tableau, TableauRow, standard_tableau
from .containment import (
    ContainmentMapping,
    find_containment_mapping,
    find_isomorphism,
    has_containment_mapping,
    tableaux_equivalent,
    tableaux_isomorphic,
)
from .minimize import MinimizationResult, is_minimal_tableau, minimize_tableau
from .kernel import CompiledTableau
from .canonical import (
    CanonicalConnectionResult,
    canonical_connection,
    canonical_connection_result,
    canonical_schema,
)

__all__ = [
    "Variable",
    "VariableKind",
    "distinguished",
    "shared",
    "unique",
    "Tableau",
    "TableauRow",
    "standard_tableau",
    "ContainmentMapping",
    "find_containment_mapping",
    "has_containment_mapping",
    "tableaux_equivalent",
    "find_isomorphism",
    "tableaux_isomorphic",
    "MinimizationResult",
    "minimize_tableau",
    "is_minimal_tableau",
    "CompiledTableau",
    "CanonicalConnectionResult",
    "canonical_connection",
    "canonical_connection_result",
    "canonical_schema",
]
