"""Tableau variables (symbols).

The standard tableau ``Tab(D, X)`` of Section 3.4 uses three kinds of symbols
per attribute column ``A``:

* the **distinguished** variable ``a`` — used in row ``r_i`` when
  ``A ∈ R_i ∩ X``;
* the **shared nondistinguished** variable ``a'`` — used in row ``r_i`` when
  ``A ∈ R_i - X`` (one such variable per attribute, shared by all rows whose
  relation schema contains ``A``);
* **unique nondistinguished** variables — fresh symbols for every other entry.

Variables are immutable value objects; two variables are equal exactly when
they denote the same symbol.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

__all__ = ["VariableKind", "Variable", "distinguished", "shared", "unique"]


class VariableKind(str, Enum):
    """The three kinds of tableau symbols."""

    DISTINGUISHED = "distinguished"
    SHARED = "shared"
    UNIQUE = "unique"


@dataclass(frozen=True, order=True)
class Variable:
    """A tableau symbol.

    ``attribute`` is the column the symbol belongs to, ``kind`` its class and
    ``index`` disambiguates unique nondistinguished variables (it is ``0`` for
    distinguished and shared variables).
    """

    attribute: str
    kind: VariableKind
    index: int = 0

    @property
    def is_distinguished(self) -> bool:
        """True for the distinguished variable of its column."""
        return self.kind is VariableKind.DISTINGUISHED

    @property
    def is_nondistinguished(self) -> bool:
        """True for shared and unique nondistinguished variables."""
        return not self.is_distinguished

    def render(self) -> str:
        """Human readable rendering: ``a`` / ``a'`` / ``a''3``."""
        if self.kind is VariableKind.DISTINGUISHED:
            return self.attribute
        if self.kind is VariableKind.SHARED:
            return f"{self.attribute}'"
        return f"{self.attribute}''{self.index}"

    def __str__(self) -> str:
        return self.render()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Variable({self.render()!r})"


def distinguished(attribute: str) -> Variable:
    """The distinguished variable of column ``attribute``."""
    return Variable(attribute=attribute, kind=VariableKind.DISTINGUISHED)


def shared(attribute: str) -> Variable:
    """The shared nondistinguished variable of column ``attribute``."""
    return Variable(attribute=attribute, kind=VariableKind.SHARED)


def unique(attribute: str, index: int) -> Variable:
    """A unique nondistinguished variable of column ``attribute``."""
    return Variable(attribute=attribute, kind=VariableKind.UNIQUE, index=index)
