"""Tree projections (Section 3.2) and the Section 6 query-processing theorems."""

from .tree_projection import (
    TreeProjectionSearch,
    find_tree_projection,
    greedy_cover_candidate,
    has_tree_projection,
    is_tree_projection,
)
from .solver import (
    AugmentedProgram,
    augment_program_with_semijoins,
    solve_with_tree_projection,
)

__all__ = [
    "is_tree_projection",
    "greedy_cover_candidate",
    "TreeProjectionSearch",
    "find_tree_projection",
    "has_tree_projection",
    "AugmentedProgram",
    "augment_program_with_semijoins",
    "solve_with_tree_projection",
]
