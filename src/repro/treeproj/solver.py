"""Solving queries from a program's relations via a tree projection
(Theorems 6.1, 6.2 and the constructions behind them).

Theorem 6.1 (tree projection sufficiency): if some ``D'' ∈ TP(P(D), D ∪ (X))``
exists then ``P`` augmented by at most ``2·|D|`` semijoins solves ``(D, X)``.
Theorem 6.2 specializes ``D`` to ``CC(D, X)`` for UR databases.

The construction implemented here follows the proof idea:

1. every relation of ``D''`` is covered by some relation of ``P(D)``, so its
   state is obtained by projecting that relation's value;
2. every original relation of ``D`` (respectively of ``CC(D, X)``) is covered
   by some node of ``D''``; semijoining the node by the original relation
   (≤ ``|D|`` semijoins) makes each node contain no tuple that conflicts with
   the original database;
3. because ``D''`` is a tree schema and ``X`` is covered by one of its nodes,
   a full-reducer pass plus a guarded bottom-up join (Yannakakis over ``D''``)
   yields ``π_X(⋈ D)``.

:func:`augment_program_with_semijoins` emits the construction as additional
:class:`~repro.relational.program.Program` statements, so the result is again
a program in the paper's sense; :func:`solve_with_tree_projection` runs it.

This module plans *per call* — every invocation re-searches the tree
projection and re-builds the augmented program — which is exactly the
fidelity the paper's construction asks for, and exactly what a serving
workload cannot afford.  The plan-once counterpart is
:class:`repro.engine.cyclic.CyclicPreparedQuery`, which freezes the same
Theorem 6.1 construction (node projections, guard semijoins, full reducer)
into a reusable plan on the compiled backends; this solver stays on verbatim
as its equivalence oracle (``tests/engine/test_cyclic_pipeline.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from ..exceptions import TreeProjectionError
from ..hypergraph.schema import DatabaseSchema, RelationSchema
from ..relational.database import DatabaseState
from ..relational.program import Program
from ..relational.relation import Relation
from ..relational.yannakakis import rooted_orientation
from .tree_projection import find_tree_projection, is_tree_projection

__all__ = ["AugmentedProgram", "augment_program_with_semijoins", "solve_with_tree_projection"]


@dataclass(frozen=True)
class AugmentedProgram:
    """A program extended per Theorem 6.1, with accounting of what was added."""

    program: Program
    tree_projection: DatabaseSchema
    added_semijoins: int
    added_joins: int
    added_projects: int

    def run(self, state: DatabaseState) -> Relation:
        """Execute the augmented program over a state for the base schema."""
        return self.program.run(state)


def _covering_name(program: Program, target: RelationSchema) -> str:
    """A relation name in ``P(D)`` whose schema contains ``target``.

    Base relations are preferred; created relations are scanned in creation
    order otherwise.
    """
    for name in program.base_names:
        if target <= program.schema_of(name):
            return name
    for name in program.created_names():
        if target <= program.schema_of(name):
            return name
    raise TreeProjectionError(
        f"no relation of P(D) covers {target.to_notation()}; "
        "the candidate is not <= P(D)"
    )


def augment_program_with_semijoins(
    program: Program,
    target: Union[RelationSchema, str],
    *,
    anchors: Optional[DatabaseSchema] = None,
    tree_projection: Optional[DatabaseSchema] = None,
    budget: int = 100_000,
) -> AugmentedProgram:
    """Extend ``program`` so that it solves ``(D, X)``, given a tree projection.

    ``anchors`` is the schema whose relations must be "re-attached" by
    semijoins — ``D`` itself for general databases (Theorem 6.1) or
    ``CC(D, X)`` for UR databases (Theorem 6.2); it defaults to the base
    schema ``D``.  When ``tree_projection`` is not supplied it is searched in
    ``TP(P(D), anchors ∪ (X))``; a :class:`TreeProjectionError` is raised when
    none is found.
    """
    target_schema = (
        target if isinstance(target, RelationSchema) else RelationSchema(target)
    )
    base = program.base_schema
    anchor_schema = anchors if anchors is not None else base
    lower = anchor_schema.add_relation(target_schema)
    extended = program.extended_schema()

    if tree_projection is None:
        if not extended.covers(lower):
            raise TreeProjectionError(
                "P(D) does not even cover D ∪ (X), so no tree projection exists; "
                "the program cannot be completed with semijoins alone (Theorem 6.3)"
            )
        search = find_tree_projection(extended, lower, budget=budget)
        if not search.found:
            raise TreeProjectionError(
                "no tree projection of P(D) w.r.t. D ∪ (X) was found; "
                "by Theorem 6.3 the program cannot be completed with semijoins alone"
            )
        tree_projection = search.projection
    else:
        if not is_tree_projection(tree_projection, extended, lower):
            raise TreeProjectionError(
                "the supplied schema is not a tree projection of P(D) w.r.t. D ∪ (X)"
            )

    # Rebuild the program so we can append to a fresh copy.
    augmented = Program(base, program.statements, base_names=program.base_names)
    added_semijoins = 0
    added_joins = 0
    added_projects = 0
    fresh_counter = 0

    def fresh(prefix: str) -> str:
        nonlocal fresh_counter
        fresh_counter += 1
        return f"__tp_{prefix}_{fresh_counter}"

    # Step 1: materialize one relation per tree-projection node.
    node_names: List[str] = []
    for node_schema in tree_projection.relations:
        cover = _covering_name(augmented, node_schema)
        name = fresh("node")
        augmented.project(name, cover, node_schema)
        added_projects += 1
        node_names.append(name)

    # Step 2: semijoin each node with every anchor relation it covers (each
    # anchor is attached to exactly one node).
    for anchor_index, anchor in enumerate(anchor_schema.relations):
        node_index = next(
            (
                index
                for index, node_schema in enumerate(tree_projection.relations)
                if anchor <= node_schema
            ),
            None,
        )
        if node_index is None:
            raise TreeProjectionError(
                f"tree projection does not cover anchor relation {anchor.to_notation()}"
            )
        anchor_name = _covering_name(augmented, anchor)
        # If the covering relation is wider than the anchor, narrow it first so
        # the semijoin is on exactly the anchor attributes.
        if augmented.schema_of(anchor_name) != anchor:
            narrowed = fresh("anchor")
            augmented.project(narrowed, anchor_name, anchor)
            added_projects += 1
            anchor_name = narrowed
        new_name = fresh("reduced")
        augmented.semijoin(new_name, node_names[node_index], anchor_name)
        added_semijoins += 1
        node_names[node_index] = new_name

    # Step 3: full reducer over a qual tree of the tree projection, then a
    # bottom-up join ending in a node that covers X, and a final projection.
    # The qual tree comes from the engine façade, so repeated augmentations
    # over the same tree projection share one analysis.
    from ..engine.analysis import analyze  # deferred: the engine sits above us

    tree = analyze(tree_projection).qual_tree
    if tree is None:  # pragma: no cover - tree_projection is a tree by construction
        raise TreeProjectionError("internal error: tree projection is not a tree schema")
    target_node = next(
        index
        for index, node_schema in enumerate(tree_projection.relations)
        if target_schema <= node_schema
    )
    order, parent = rooted_orientation(tree, root=target_node)

    # Leaf-to-root semijoins.
    for node in reversed(order):
        mother = parent[node]
        if mother is None:
            continue
        new_name = fresh("up")
        augmented.semijoin(new_name, node_names[mother], node_names[node])
        added_semijoins += 1
        node_names[mother] = new_name
    # Root-to-leaf semijoins.
    for node in order:
        mother = parent[node]
        if mother is None:
            continue
        new_name = fresh("down")
        augmented.semijoin(new_name, node_names[node], node_names[mother])
        added_semijoins += 1
        node_names[node] = new_name

    # After the full reducer every node is globally consistent; in particular
    # the root (which was chosen to cover X) already holds the projection of
    # the join of all nodes onto its own schema, so the answer is a single
    # projection away — no join statements are needed, matching the theorem's
    # "augmented by semijoins" phrasing.
    final = fresh("answer")
    augmented.project(final, node_names[target_node], target_schema)
    added_projects += 1

    return AugmentedProgram(
        program=augmented,
        tree_projection=tree_projection,
        added_semijoins=added_semijoins,
        added_joins=added_joins,
        added_projects=added_projects,
    )


def solve_with_tree_projection(
    program: Program,
    target: Union[RelationSchema, str],
    state: DatabaseState,
    *,
    anchors: Optional[DatabaseSchema] = None,
    tree_projection: Optional[DatabaseSchema] = None,
    budget: int = 100_000,
) -> Relation:
    """Augment ``program`` per Theorem 6.1/6.2 and evaluate it on ``state``."""
    augmented = augment_program_with_semijoins(
        program,
        target,
        anchors=anchors,
        tree_projection=tree_projection,
        budget=budget,
    )
    return augmented.run(state)
