"""Tree projections (Section 3.2).

Let ``D <= D'' <= D'`` (each schema covered by the next in the paper's
ordering).  ``D''`` is a *tree projection of D' with respect to D*, written
``D'' ∈ TP(D', D)``, when ``D''`` is a tree schema.  For a query ``Q = (D, X)``
the relevant notion is ``TP(D', D ∪ (X))`` — the target ``X`` must also be
covered by the tree projection.

Deciding whether a tree projection exists is NP-hard in general, so the
search is organized in layers:

1. cheap certificates — ``D`` itself (or its reduction) is a tree schema, or
   ``D'`` itself is;
2. the *greedy cover* candidate — for every ``R' ∈ D'`` take the union of all
   ``D``-edges contained in ``R'``; this covers ``D``, is covered by ``D'``
   and is frequently a tree (it is for the paper's Section 3.2 example);
3. bounded exact search over candidate edges formed as unions of ``D``-edges
   inside a ``D'``-edge, and (optionally) over arbitrary attribute subsets of
   ``D'``-edges.

Layer 3 carries an explicit budget and raises
:class:`~repro.exceptions.SearchBudgetExceeded` rather than silently giving
up, and ``find_tree_projection`` reports which layer produced its answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..exceptions import NotASubSchemaError, SearchBudgetExceeded, TreeProjectionError
from ..hypergraph.gyo import is_tree_schema
from ..hypergraph.schema import Attribute, DatabaseSchema, RelationSchema

__all__ = [
    "is_tree_projection",
    "greedy_cover_candidate",
    "TreeProjectionSearch",
    "find_tree_projection",
    "has_tree_projection",
]


def _require_covered(small: DatabaseSchema, big: DatabaseSchema, label: str) -> None:
    if not big.covers(small):
        raise NotASubSchemaError(
            f"{label}: expected the first schema to be covered by the second "
            f"({small} is not <= {big})"
        )


def is_tree_projection(
    candidate: DatabaseSchema, upper: DatabaseSchema, lower: DatabaseSchema
) -> bool:
    """``candidate ∈ TP(upper, lower)``: ``lower <= candidate <= upper`` and
    ``candidate`` is a tree schema."""
    return (
        candidate.covers(lower)
        and upper.covers(candidate)
        and is_tree_schema(candidate)
    )


def greedy_cover_candidate(
    upper: DatabaseSchema, lower: DatabaseSchema
) -> DatabaseSchema:
    """The greedy candidate: each ``R' ∈ upper`` replaced by the union of the
    ``lower``-edges it contains (empty unions dropped), reduced."""
    relations: List[RelationSchema] = []
    for big in upper.relations:
        covered = [small for small in lower.relations if small <= big]
        if covered:
            union = RelationSchema(())
            for small in covered:
                union = union.union(small)
            relations.append(union)
    candidate = DatabaseSchema(relations).reduction()
    return candidate


@dataclass(frozen=True)
class TreeProjectionSearch:
    """Outcome of a tree-projection search.

    ``projection`` is ``None`` when no tree projection was found within the
    layers/budget tried; ``method`` records which layer succeeded
    (``"lower"``, ``"upper"``, ``"greedy-cover"``, ``"union-search"``,
    ``"subset-search"`` or ``"none"``); ``exhaustive`` is True when a ``None``
    answer is definitive (the subset search ran to completion).
    """

    projection: Optional[DatabaseSchema]
    method: str
    exhaustive: bool

    @property
    def found(self) -> bool:
        """True when a tree projection was found."""
        return self.projection is not None


def _union_candidates_within(
    big: RelationSchema, lower: DatabaseSchema, budget: int
) -> List[RelationSchema]:
    """All unions of non-empty subsets of the lower-edges contained in ``big``."""
    inside = [small for small in lower.relations if small <= big and small]
    unique: Set[FrozenSet[Attribute]] = set()
    results: List[RelationSchema] = []
    count = 0
    for size in range(1, len(inside) + 1):
        for subset in combinations(range(len(inside)), size):
            count += 1
            if count > budget:
                raise SearchBudgetExceeded(
                    f"union-candidate enumeration exceeded budget of {budget}"
                )
            union: Set[Attribute] = set()
            for index in subset:
                union |= inside[index].attributes
            frozen = frozenset(union)
            if frozen not in unique:
                unique.add(frozen)
                results.append(RelationSchema(frozen))
    return results


def _search_over_candidates(
    candidate_pool: Sequence[RelationSchema],
    upper: DatabaseSchema,
    lower: DatabaseSchema,
    budget: int,
) -> Optional[DatabaseSchema]:
    """Exact search over sub-multisets of the candidate pool (small pools only)."""
    pool = list(dict.fromkeys(candidate_pool))
    count = 0
    for size in range(1, len(pool) + 1):
        for subset in combinations(range(len(pool)), size):
            count += 1
            if count > budget:
                raise SearchBudgetExceeded(
                    f"tree-projection candidate search exceeded budget of {budget}"
                )
            candidate = DatabaseSchema(pool[index] for index in subset)
            if candidate.covers(lower) and is_tree_schema(candidate):
                # Coverage by `upper` holds by construction of the pool.
                return candidate.reduction()
    return None


def find_tree_projection(
    upper: DatabaseSchema,
    lower: DatabaseSchema,
    *,
    budget: int = 100_000,
    allow_subset_search: bool = False,
) -> TreeProjectionSearch:
    """Search for some ``D'' ∈ TP(upper, lower)``.

    ``lower <= upper`` is required.  The search tries, in order: ``lower``
    itself, ``upper`` itself, the greedy cover candidate, then an exact search
    over unions of ``lower``-edges nested in ``upper``-edges.  When
    ``allow_subset_search`` is set a final exact search over *all* attribute
    subsets of ``upper``-edges is attempted, which is complete but only
    feasible for small attribute universes.
    """
    _require_covered(lower, upper, "find_tree_projection")

    reduced_lower = lower.reduction()
    if is_tree_schema(reduced_lower):
        return TreeProjectionSearch(
            projection=reduced_lower, method="lower", exhaustive=False
        )
    reduced_upper = upper.reduction()
    if is_tree_schema(reduced_upper):
        return TreeProjectionSearch(
            projection=reduced_upper, method="upper", exhaustive=False
        )
    greedy = greedy_cover_candidate(upper, lower)
    if greedy.covers(lower) and is_tree_schema(greedy):
        return TreeProjectionSearch(
            projection=greedy, method="greedy-cover", exhaustive=False
        )

    # Exact search over unions of lower-edges nested in upper-edges.
    pool: List[RelationSchema] = []
    for big in upper.relations:
        pool.extend(_union_candidates_within(big, lower, budget))
    found = _search_over_candidates(pool, upper, lower, budget)
    if found is not None:
        return TreeProjectionSearch(
            projection=found, method="union-search", exhaustive=False
        )

    if allow_subset_search:
        subset_pool: List[RelationSchema] = []
        seen: Set[FrozenSet[Attribute]] = set()
        count = 0
        for big in upper.relations:
            attrs = big.sorted_attributes()
            for size in range(1, len(attrs) + 1):
                for subset in combinations(attrs, size):
                    count += 1
                    if count > budget:
                        raise SearchBudgetExceeded(
                            f"subset-candidate enumeration exceeded budget of {budget}"
                        )
                    frozen = frozenset(subset)
                    if frozen not in seen:
                        seen.add(frozen)
                        subset_pool.append(RelationSchema(frozen))
        found = _search_over_candidates(subset_pool, upper, lower, budget)
        return TreeProjectionSearch(
            projection=found,
            method="subset-search" if found is not None else "none",
            exhaustive=True,
        )

    return TreeProjectionSearch(projection=None, method="none", exhaustive=False)


def has_tree_projection(
    upper: DatabaseSchema,
    lower: DatabaseSchema,
    *,
    budget: int = 100_000,
    allow_subset_search: bool = False,
) -> bool:
    """Convenience wrapper around :func:`find_tree_projection`."""
    return find_tree_projection(
        upper, lower, budget=budget, allow_subset_search=allow_subset_search
    ).found
