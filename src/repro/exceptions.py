"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` library."""


class SchemaError(ReproError):
    """Raised when a relation or database schema is malformed or misused."""


class ParseError(SchemaError):
    """Raised when the textual schema notation cannot be parsed."""


class NotATreeSchemaError(SchemaError):
    """Raised when an operation requires a tree (acyclic) schema but the
    supplied schema is cyclic."""


class NotASubSchemaError(SchemaError):
    """Raised when an operation requires ``D' <= D`` (every relation schema of
    ``D'`` contained in some relation schema of ``D``) and the condition fails."""


class QualGraphError(ReproError):
    """Raised when a graph is not a valid qual graph for a schema."""


class GYOError(ReproError):
    """Raised when an invalid GYO operation is attempted (e.g. deleting a
    sacred attribute, or eliminating a relation that is not a subset)."""


class TableauError(ReproError):
    """Raised for malformed tableaux or invalid containment mappings."""


class RelationError(ReproError):
    """Raised for malformed relation states or invalid algebra operations."""


class ProgramError(ReproError):
    """Raised when a join/project/semijoin program is malformed or references
    unknown relations."""


class TreeProjectionError(ReproError):
    """Raised when tree-projection search is invoked on invalid inputs."""


class TreeficationError(ReproError):
    """Raised for invalid treefication problem instances."""


class SearchBudgetExceeded(ReproError):
    """Raised when a worst-case-exponential search exceeds its explicit budget.

    The library keeps exponential searches (Lemma 3.1 witnesses, weak
    gamma-cycle enumeration, exact tree-projection search, exact Fixed
    Treefication) behind explicit budgets so that callers never hit a silent
    blow-up.  Catching this exception and retrying with a larger budget is
    always safe.
    """
