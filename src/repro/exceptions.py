"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` library."""


class SchemaError(ReproError):
    """Raised when a relation or database schema is malformed or misused."""


class ParseError(SchemaError):
    """Raised when the textual schema notation cannot be parsed."""


class NotATreeSchemaError(SchemaError):
    """Raised when an operation requires a tree (acyclic) schema but the
    supplied schema is cyclic."""


class NotASubSchemaError(SchemaError):
    """Raised when an operation requires ``D' <= D`` (every relation schema of
    ``D'`` contained in some relation schema of ``D``) and the condition fails."""


class QualGraphError(ReproError):
    """Raised when a graph is not a valid qual graph for a schema."""


class GYOError(ReproError):
    """Raised when an invalid GYO operation is attempted (e.g. deleting a
    sacred attribute, or eliminating a relation that is not a subset)."""


class TableauError(ReproError):
    """Raised for malformed tableaux or invalid containment mappings."""


class RelationError(ReproError):
    """Raised for malformed relation states or invalid algebra operations."""


class ProgramError(ReproError):
    """Raised when a join/project/semijoin program is malformed or references
    unknown relations."""


class TreeProjectionError(ReproError):
    """Raised when tree-projection search is invoked on invalid inputs."""


class TreeficationError(ReproError):
    """Raised for invalid treefication problem instances."""


class SearchBudgetExceeded(ReproError):
    """Raised when a worst-case-exponential search exceeds its explicit budget.

    The library keeps exponential searches (Lemma 3.1 witnesses, weak
    gamma-cycle enumeration, exact tree-projection search, exact Fixed
    Treefication) behind explicit budgets so that callers never hit a silent
    blow-up.  Catching this exception and retrying with a larger budget is
    always safe.
    """


class CatalogError(ReproError):
    """Base class for persistent plan-catalog failures.

    Raised only by the *explicit* persistence API (``save_state``,
    ``load_state``, the append-log reader in strict mode, catalog
    construction with ``create=False``).  The serving-path catalog methods
    (:meth:`repro.engine.catalog.PlanCatalog.load` /
    :meth:`~repro.engine.catalog.PlanCatalog.store`) never raise: disk
    failures degrade to in-memory-only operation and corrupt records are
    quarantined, both recorded in
    :class:`~repro.engine.catalog.CatalogStats`.
    """


class CatalogCorruptionError(CatalogError):
    """A persisted record failed verification.

    Covers every defended failure shape: truncated header or payload, bad
    magic, a format version this library does not speak, checksum mismatch,
    trailing garbage, and payloads that do not deserialize to the expected
    record structure.  ``path`` names the offending file when known.
    """

    def __init__(self, message: str, path: "str | None" = None) -> None:
        super().__init__(message)
        #: Filesystem path of the record that failed verification.
        self.path = path


class ExecutionError(ReproError):
    """Base class for runtime execution failures of the serving layer.

    Planning and schema errors stay under :class:`SchemaError`; this branch
    of the hierarchy covers failures that happen while *executing* a compiled
    plan — worker processes dying, shards timing out, states that cannot
    cross a process boundary.  Every subclass is raised by the parallel
    executor's supervision machinery (:mod:`repro.engine.parallel`).
    """


class AdmissionError(ExecutionError):
    """A submission was refused by the query service's admission control.

    Raised by :class:`repro.engine.service.QueryService` when accepting a
    batch would push the service past its configured in-flight limits
    (``max_inflight_states`` / ``max_inflight_bytes``) and the caller asked
    not to block (``wait=False``), or when the admission wait exceeded the
    caller's timeout.  Carries the sizes involved so callers can shed load
    intelligently: retry later, shrink the batch, or route elsewhere.
    """

    def __init__(
        self,
        message: str,
        *,
        requested_states: int = 0,
        requested_bytes: int = 0,
        inflight_states: int = 0,
        inflight_bytes: int = 0,
    ) -> None:
        super().__init__(message)
        #: States in the refused submission.
        self.requested_states = requested_states
        #: Estimated payload bytes of the refused submission.
        self.requested_bytes = requested_bytes
        #: States already admitted and not yet completed.
        self.inflight_states = inflight_states
        #: Estimated bytes already admitted and not yet completed.
        self.inflight_bytes = inflight_bytes


class WorkerCrashError(ExecutionError):
    """A worker process died (segfault, ``os._exit``, OOM kill) and the pool
    could not be recovered within the respawn budget.

    While the respawn budget lasts, worker death is handled transparently —
    the pool is respawned and only the lost shards are resubmitted — so this
    error surfaces only when crashes repeat past
    ``ParallelExecutor(max_respawns=...)``.
    """


class ShardTimeoutError(ExecutionError):
    """A shard exceeded ``shard_timeout`` and its worker had to be killed.

    Carries ``state_indices`` — the input positions of the states that kept
    timing out after retry and bisection isolated them.  Timed-out states are
    never retried on the in-process backend (an in-process hang would stall
    the caller forever), so repeated timeout leads directly here or, under
    ``failure_policy="degrade"``, to quarantine.
    """

    def __init__(self, message: str, state_indices: "tuple" = ()) -> None:
        super().__init__(message)
        #: Input positions of the states attributed to the timeout.
        self.state_indices = tuple(state_indices)


class StatePicklingError(ExecutionError):
    """A database state (or the plan spec) could not be pickled across the
    process boundary.

    ``state_index`` names the offending state's input position, or ``None``
    when the failure is attributed to the plan spec itself.  The parallel
    executor converts the opaque ``PicklingError`` a worker submission
    produces into this error by probing each state of the failed shard
    individually; unpicklable states are first retried on the in-process
    compiled backend, so this surfaces only when that fallback also fails.
    """

    def __init__(self, message: str, state_index: "int | None" = None) -> None:
        super().__init__(message)
        #: Input position of the unpicklable state (``None``: the spec).
        self.state_index = state_index


class ShardExecutionError(ExecutionError):
    """A batch finished with quarantined states under ``failure_policy="raise"``.

    The structured summary of everything the supervision machinery could not
    recover: ``state_indices`` holds the input positions of the quarantined
    states and ``causes`` maps each of those positions to the terminal
    exception recorded for it (an :class:`ExecutionError` subclass, or the
    original worker exception for plain execution failures).  Under
    ``failure_policy="degrade"`` the same attribution is reported through
    ``ParallelStats.quarantined`` instead of raising.
    """

    def __init__(self, message: str, causes: "dict" = ()) -> None:
        super().__init__(message)
        #: Input position -> terminal exception for every quarantined state.
        self.causes = dict(causes)

    @property
    def state_indices(self) -> "tuple":
        """Input positions of the quarantined states, sorted."""
        return tuple(sorted(self.causes))
