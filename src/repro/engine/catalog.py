"""Crash-safe persistent plan catalog and on-disk interchange format.

The analysis LRU (:mod:`repro.engine.analysis`) and the worker plan caches
are per-process: they die with the process, so every cold start — and every
worker respawned by the PR-6 supervisor — pays full planning again.  This
module makes schema analysis a *durable* asset: a :class:`PlanCatalog` is a
directory of verified records persisting the expensive artifacts of an
:class:`~repro.engine.analysis.AnalyzedSchema` (GYO traces, qual trees,
acyclicity flags, treefications, minimized tableaux, canonical connections,
join plans, cyclic :class:`~repro.engine.cyclic.ProjectionChoice`\\ s), keyed
by the **ordered relation tuple** — exactly the key discipline of the
analysis LRU, for exactly the same reason: analysis artifacts are
positional, and multiset-equal schemas in different orders must not share
them.

Durability first
----------------

The catalog is built to survive ``kill -9`` and to distrust everything it
reads back:

* **Durable writes.**  Every record is serialized in memory, written to a
  temporary file *in the catalog directory* (same filesystem, so the rename
  is atomic), fsynced, atomically renamed over the final name, and the
  directory entry fsynced — under an advisory ``fcntl`` writer lock
  (``.lock``) so concurrent processes can share one catalog directory.  A
  crash at any point leaves either the old record or the new one, never a
  half-visible name.
* **Verified reads.**  Each record starts with a fixed header — magic,
  format version, record kind, CRC-32 checksum, payload length — and the
  read path verifies all five before deserializing.  Any mismatch
  (truncation, bad magic, a format version this library does not speak,
  checksum failure, trailing garbage, undeserializable payload) is treated
  as corruption: the record is **quarantined** (renamed to ``*.corrupt``,
  counted in :class:`CatalogStats`) and the caller falls back to fresh
  analysis.  Corruption can never take the serving path down.
* **Degraded mode.**  I/O failures (``ENOSPC``, permissions, a yanked
  mount) are absorbed and counted; after
  :data:`MAX_CONSECUTIVE_IO_ERRORS` consecutive failures the catalog stops
  touching the disk entirely and serves pure misses, so a broken disk costs
  one error per operation at worst and nothing once latched.  The serving
  path never sees an exception from the catalog.

The deterministic fault points behind the corruption tests live in
:mod:`repro.engine.faults` (``REPRO_FAULT_TORN_WRITE``,
``REPRO_FAULT_CORRUPT_RECORD``).

Interchange format
------------------

The same record framing carries schemas and database states:
:func:`save_schema` / :func:`load_schema` and :func:`save_state` /
:func:`load_state` write single-record files with the durable protocol, and
:class:`StateLogWriter` / :func:`iter_states` implement an **append log**
for bulk workloads — one framed record per appended state, readable by
streaming (each record is verified independently, and a torn tail — the
normal result of a crash mid-append — is detected and reported without
poisoning the records before it).

Integration
-----------

``analyze(schema, catalog=...)`` consults a catalog on an analysis-LRU
miss; :func:`~repro.engine.analysis.prepared_from_spec` both consults and
writes back, which is what lets a respawned worker skip re-analysis.  The
environment variable :data:`ENV_CATALOG_DIR` (``REPRO_CATALOG_DIR``) names
a default catalog that is picked up process-wide — worker processes inherit
it, so arming it warms every future cold start.  See
``docs/persistence.md``.
"""

from __future__ import annotations

import hashlib
import io
import os
import pickle
import struct
import tempfile
import threading
import zlib
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

try:  # pragma: no cover - platform dependent
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]

from ..exceptions import CatalogCorruptionError, CatalogError
from ..hypergraph.schema import DatabaseSchema, RelationSchema
from ..relational.database import DatabaseState
from . import faults

__all__ = [
    "ENV_CATALOG_DIR",
    "FORMAT_VERSION",
    "CatalogRecordInfo",
    "CatalogStats",
    "PlanCatalog",
    "StateLogWriter",
    "default_catalog",
    "iter_states",
    "load_schema",
    "load_state",
    "read_state_log",
    "resolve_catalog",
    "save_schema",
    "save_state",
    "snapshot_analysis",
    "restore_analysis",
]

#: Directory of the process-wide default catalog (inherited by workers).
ENV_CATALOG_DIR = "REPRO_CATALOG_DIR"

#: Bump when the record framing or payload layout changes incompatibly.
#: Readers quarantine records from other versions — a stale-version record
#: is indistinguishable from one this build cannot be trusted to interpret.
FORMAT_VERSION = 1

#: Eight fixed magic bytes opening every record.
MAGIC = b"RPROCAT\x01"

#: Record kinds (``kind`` field of the header).
KIND_ANALYSIS = 1
KIND_SCHEMA = 2
KIND_STATE = 3

#: Header layout: magic ``8s``, format version ``H``, record kind ``H``,
#: CRC-32 of the payload ``I``, payload length ``Q`` — 24 bytes.
_HEADER = struct.Struct("<8sHHIQ")

#: Consecutive I/O failures after which a catalog latches into degraded
#: (in-memory-only) mode and stops touching the disk.
MAX_CONSECUTIVE_IO_ERRORS = 8

#: Guard against absurd/forged payload lengths before allocating.
_MAX_PAYLOAD = 1 << 40

SchemaLike = Union[DatabaseSchema, Sequence[RelationSchema]]


# -- record framing -------------------------------------------------------------


def _pack_record(kind: int, payload: bytes) -> bytes:
    """Frame ``payload`` with the versioned, checksummed record header."""
    checksum = zlib.crc32(payload) & 0xFFFFFFFF
    return _HEADER.pack(MAGIC, FORMAT_VERSION, kind, checksum, len(payload)) + payload


def _read_record(
    data: bytes, offset: int, *, path: str = "<record>"
) -> Tuple[int, bytes, int]:
    """Verify and return one record at ``offset``: ``(kind, payload, end)``.

    Raises :class:`~repro.exceptions.CatalogCorruptionError` on truncation,
    bad magic, unsupported version, forged length or checksum mismatch.
    """
    if len(data) - offset < _HEADER.size:
        raise CatalogCorruptionError(
            f"truncated record header ({len(data) - offset} of "
            f"{_HEADER.size} bytes)",
            path=path,
        )
    magic, version, kind, checksum, length = _HEADER.unpack_from(data, offset)
    if magic != MAGIC:
        raise CatalogCorruptionError(f"bad record magic {magic!r}", path=path)
    if version != FORMAT_VERSION:
        raise CatalogCorruptionError(
            f"unsupported format version {version} "
            f"(this build speaks {FORMAT_VERSION})",
            path=path,
        )
    if length > _MAX_PAYLOAD:
        raise CatalogCorruptionError(
            f"implausible payload length {length}", path=path
        )
    start = offset + _HEADER.size
    if len(data) - start < length:
        raise CatalogCorruptionError(
            f"truncated payload ({len(data) - start} of {length} bytes)",
            path=path,
        )
    payload = data[start : start + length]
    if zlib.crc32(payload) & 0xFFFFFFFF != checksum:
        raise CatalogCorruptionError("payload checksum mismatch", path=path)
    return kind, payload, start + length


def _unpack_single(data: bytes, expected_kind: int, *, path: str) -> bytes:
    """Verify a single-record file: exactly one record of the right kind."""
    kind, payload, end = _read_record(data, 0, path=path)
    if kind != expected_kind:
        raise CatalogCorruptionError(
            f"record kind {kind} where {expected_kind} was expected", path=path
        )
    if end != len(data):
        raise CatalogCorruptionError(
            f"{len(data) - end} trailing bytes after the record", path=path
        )
    return payload


def _loads(payload: bytes, *, path: str) -> Any:
    """Deserialize a verified payload, converting any failure to corruption.

    A checksum-valid payload can still fail to unpickle (a record written by
    incompatible code, or a deliberately crafted file); the defense posture
    is the same — quarantine, never crash the serving path — so every
    deserialization error is normalized to
    :class:`~repro.exceptions.CatalogCorruptionError`.
    """
    try:
        return pickle.loads(payload)
    except Exception as error:
        raise CatalogCorruptionError(
            f"payload does not deserialize ({type(error).__name__}: {error})",
            path=path,
        ) from error


def _dumps(obj: Any) -> bytes:
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def _apply_write_faults(data: bytes) -> Tuple[bytes, Optional[str]]:
    """Consult the injectable catalog fault points for one durable write.

    Returns ``(data, torn_mode)``: data possibly with one payload byte
    flipped (corrupt-record fault), torn_mode ``None``/``"torn"``/``"kill"``.
    """
    if not faults.catalog_faults_active():
        return data, None
    if faults.corrupt_record() and len(data) > _HEADER.size:
        position = _HEADER.size + (len(data) - _HEADER.size) // 2
        corrupted = bytearray(data)
        corrupted[position] ^= 0xFF
        data = bytes(corrupted)
    return data, faults.torn_write_mode()


def _atomic_write(path: str, data: bytes) -> None:
    """The durable write protocol: temp file, fsync, rename, directory fsync.

    Raises ``OSError`` on failure (callers decide whether to degrade or
    propagate).  The injected torn-write fault writes only a prefix, skips
    the fsync and still renames — the on-disk picture of a crash after
    rename with unflushed pages — and the ``kill`` flavor then SIGKILLs the
    process, making crash tests deterministic.
    """
    data, torn = _apply_write_faults(data)
    directory = os.path.dirname(path) or "."
    descriptor, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=".tmp.", suffix=".part"
    )
    try:
        if torn is not None:
            os.write(descriptor, data[: max(_HEADER.size - 4, len(data) // 2)])
            os.close(descriptor)
            os.replace(tmp_path, path)
            if torn == "kill":
                faults.kill_self()
            return
        os.write(descriptor, data)
        os.fsync(descriptor)
        os.close(descriptor)
    except OSError:
        try:
            os.close(descriptor)
        except OSError:
            pass
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    try:
        os.replace(tmp_path, path)
    except OSError:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    _fsync_directory(directory)


def _fsync_directory(directory: str) -> None:
    """Flush a directory entry so the rename itself survives power loss."""
    try:
        descriptor = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(descriptor)
    except OSError:  # pragma: no cover - fsync on dirs can be unsupported
        pass
    finally:
        os.close(descriptor)


# -- schema / state interchange -------------------------------------------------


def _as_database_schema(schema: SchemaLike) -> DatabaseSchema:
    return schema if isinstance(schema, DatabaseSchema) else DatabaseSchema(schema)


def save_schema(path: str, schema: SchemaLike) -> None:
    """Durably write ``schema`` as a single-record interchange file.

    Unlike the catalog's serving-path methods, the explicit save/load API
    raises (:class:`~repro.exceptions.CatalogError` wrapping the ``OSError``)
    on failure — a user-initiated export must not fail silently.
    """
    payload = _dumps(_as_database_schema(schema))
    try:
        _atomic_write(path, _pack_record(KIND_SCHEMA, payload))
    except OSError as error:
        raise CatalogError(f"cannot write schema to {path}: {error}") from error


def load_schema(path: str) -> DatabaseSchema:
    """Read back a schema written by :func:`save_schema` (verified)."""
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as error:
        raise CatalogError(f"cannot read schema from {path}: {error}") from error
    schema = _loads(_unpack_single(data, KIND_SCHEMA, path=path), path=path)
    if not isinstance(schema, DatabaseSchema):
        raise CatalogCorruptionError(
            f"schema record holds a {type(schema).__name__}", path=path
        )
    return schema


def save_state(path: str, state: DatabaseState) -> None:
    """Durably write a database state as a single-record interchange file."""
    payload = _dumps(state)
    try:
        _atomic_write(path, _pack_record(KIND_STATE, payload))
    except OSError as error:
        raise CatalogError(f"cannot write state to {path}: {error}") from error


def load_state(path: str) -> DatabaseState:
    """Read back a state written by :func:`save_state` (verified)."""
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as error:
        raise CatalogError(f"cannot read state from {path}: {error}") from error
    state = _loads(_unpack_single(data, KIND_STATE, path=path), path=path)
    if not isinstance(state, DatabaseState):
        raise CatalogCorruptionError(
            f"state record holds a {type(state).__name__}", path=path
        )
    return state


class StateLogWriter:
    """Append-log writer: one framed state record per :meth:`append`.

    The log is the bulk-ingest format: a reader streams states back without
    holding the whole file, and a crash mid-append costs at most the torn
    tail record (every record is independently checksummed).  ``sync=True``
    (the default) fsyncs after every append — each appended state is durable
    the moment ``append`` returns; ``sync=False`` trades that for
    throughput and fsyncs once on :meth:`close`.
    """

    def __init__(self, path: str, *, sync: bool = True) -> None:
        self.path = path
        self._sync = sync
        try:
            self._handle: Optional[io.BufferedWriter] = open(path, "ab")
        except OSError as error:
            raise CatalogError(f"cannot open state log {path}: {error}") from error
        self.appended = 0

    def append(self, state: DatabaseState) -> int:
        """Append one state; returns the record's size in bytes."""
        if self._handle is None:
            raise CatalogError(f"state log {self.path} is closed")
        record = _pack_record(KIND_STATE, _dumps(state))
        try:
            self._handle.write(record)
            self._handle.flush()
            if self._sync:
                os.fsync(self._handle.fileno())
        except OSError as error:
            raise CatalogError(
                f"cannot append to state log {self.path}: {error}"
            ) from error
        self.appended += 1
        return len(record)

    def close(self) -> None:
        """Flush (and fsync) the log; idempotent."""
        handle, self._handle = self._handle, None
        if handle is None:
            return
        try:
            handle.flush()
            os.fsync(handle.fileno())
        except OSError:
            pass
        finally:
            handle.close()

    def __enter__(self) -> "StateLogWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def iter_states(path: str, *, strict: bool = False) -> Iterator[DatabaseState]:
    """Stream verified states out of an append log.

    Records are verified one by one; iteration stops at the first corrupt or
    torn record (the crash-mid-append signature).  With ``strict=True`` the
    stop raises the underlying
    :class:`~repro.exceptions.CatalogCorruptionError` instead — use strict
    mode when the log is *supposed* to be complete and a torn tail means
    data loss the caller must hear about.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as error:
        raise CatalogError(f"cannot read state log {path}: {error}") from error
    offset = 0
    while offset < len(data):
        try:
            kind, payload, offset = _read_record(data, offset, path=path)
            if kind != KIND_STATE:
                raise CatalogCorruptionError(
                    f"record kind {kind} in a state log", path=path
                )
            state = _loads(payload, path=path)
            if not isinstance(state, DatabaseState):
                raise CatalogCorruptionError(
                    f"log record holds a {type(state).__name__}", path=path
                )
        except CatalogCorruptionError:
            if strict:
                raise
            return
        yield state


def read_state_log(path: str) -> Tuple[List[DatabaseState], bool]:
    """Read a whole append log: ``(states, clean)``.

    ``clean`` is False when the log ended in a torn or corrupt record (the
    recovered states before it are still good — that is the point of
    per-record framing).
    """
    states: List[DatabaseState] = []
    iterator = iter_states(path, strict=True)
    while True:
        try:
            states.append(next(iterator))
        except StopIteration:
            return states, True
        except CatalogCorruptionError:
            return states, False


# -- analysis snapshots ---------------------------------------------------------


def snapshot_analysis(analysis) -> Dict[str, Any]:
    """Extract the persistable artifacts of an ``AnalyzedSchema``.

    Captures everything expensive and deterministic: GYO traces, the qual
    tree (including the *knowledge* that a cyclic schema has none),
    acyclicity flags, the treefication, standard tableaux, canonical
    connections (which carry the minimized tableaux), join plans and cyclic
    projection choices.  Deliberately excluded: prepared queries and
    compiled plans (process-local by design — interners and itemgetters do
    not belong on disk) and cost probes (host- and load-specific timings).
    """
    from .analysis import _CACHE_LOCK, _UNSET

    with _CACHE_LOCK:
        gyo_traces = dict(analysis._gyo_traces)
        tableaux = dict(analysis._tableaux)
        connections = dict(analysis._connections)
        join_plans = dict(analysis._join_plans)
        cyclic_choices = dict(analysis._cyclic_choices)
    qual_tree = analysis._qual_tree
    record: Dict[str, Any] = {
        "kind": "analysis",
        "key": analysis.schema.relations,
        "schema": analysis.schema,
        "gyo_traces": gyo_traces,
        "qual_tree_known": qual_tree is not _UNSET,
        "qual_tree": None if qual_tree is _UNSET else qual_tree,
        "flags": dict(analysis._flags),
        "treefication": analysis._treefication,
        "tableaux": tableaux,
        "connections": connections,
        "join_plans": join_plans,
        "cyclic_choices": cyclic_choices,
    }
    record["artifacts"] = _artifact_count(record)
    return record


def _artifact_count(record: Dict[str, Any]) -> int:
    """How many cached artifacts a snapshot carries (the dirtiness metric)."""
    return (
        len(record["gyo_traces"])
        + len(record["flags"])
        + len(record["tableaux"])
        + len(record["connections"])
        + len(record["join_plans"])
        + len(record["cyclic_choices"])
        + (1 if record["qual_tree_known"] else 0)
        + (1 if record["treefication"] is not None else 0)
    )


def restore_analysis(record: Dict[str, Any], *, schema=None):
    """Rebuild an ``AnalyzedSchema`` from a verified snapshot record.

    The restored analysis is freshly constructed and then pre-populated, so
    it behaves exactly like one that computed everything locally — memos
    keep memoizing, prepared queries compile lazily on top of the restored
    qual tree, and nothing persisted is ever recomputed.

    ``schema`` grafts the *caller's* ``DatabaseSchema`` object in place of
    the record's unpickled copy.  The compiled backend's per-state schema
    check has an identity fast path (``state.schema is plan.schema``); an
    unpickled schema object fails it and every state then pays a full
    multiset-equality comparison — measurably slower on wide schemas.  Only
    graft a schema whose **ordered** relation tuple equals the record key
    (``PlanCatalog.load`` verifies that before calling); the memo contents
    still reference the unpickled relation objects internally, which is
    fine — they compare equal, and nothing below the top-level check keys
    on identity.
    """
    from .analysis import AnalyzedSchema

    analysis = AnalyzedSchema(record["schema"] if schema is None else schema)
    analysis._gyo_traces.update(record["gyo_traces"])
    analysis._tableaux.update(record["tableaux"])
    analysis._connections.update(record["connections"])
    analysis._join_plans.update(record["join_plans"])
    analysis._cyclic_choices.update(record["cyclic_choices"])
    analysis._flags.update(record["flags"])
    if record["qual_tree_known"]:
        object.__setattr__(analysis, "_qual_tree", record["qual_tree"])
    if record["treefication"] is not None:
        object.__setattr__(analysis, "_treefication", record["treefication"])
    return analysis


# -- the catalog ----------------------------------------------------------------


class CatalogStats:
    """Catalog-lifetime counters (every mutation under the catalog lock)."""

    __slots__ = (
        "hits",
        "misses",
        "stores",
        "store_skips",
        "quarantined",
        "degraded",
        "key_mismatches",
        "disabled",
    )

    def __init__(self) -> None:
        #: Loads answered from a verified on-disk record.
        self.hits = 0
        #: Loads with no record on disk (quarantined reads count here too —
        #: after quarantine the record is gone, and the caller re-analyzes).
        self.misses = 0
        #: Durable record writes performed.
        self.stores = 0
        #: Stores skipped because the on-disk record is already current.
        self.store_skips = 0
        #: Corrupt records renamed aside (``*.corrupt``).
        self.quarantined = 0
        #: I/O failures absorbed (the op degraded to an in-memory miss/no-op).
        self.degraded = 0
        #: Records whose stored key did not match the requested key (digest
        #: collision or a foreign file) — served as misses.
        self.key_mismatches = 0
        #: True once consecutive I/O failures latched the catalog into
        #: in-memory-only mode.
        self.disabled = False

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly snapshot."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "store_skips": self.store_skips,
            "quarantined": self.quarantined,
            "degraded": self.degraded,
            "key_mismatches": self.key_mismatches,
            "disabled": self.disabled,
        }

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"CatalogStats(hits={self.hits}, misses={self.misses}, "
            f"stores={self.stores}, quarantined={self.quarantined}, "
            f"degraded={self.degraded})"
        )


@dataclass(frozen=True)
class CatalogRecordInfo:
    """One catalog entry as reported by :meth:`PlanCatalog.records`."""

    name: str
    path: str
    size: int
    mtime: float
    ok: bool
    #: Schema notation (verified records only).
    schema: Optional[str] = None
    #: Number of persisted artifacts (verified records only).
    artifacts: Optional[int] = None
    #: Why verification failed (corrupt records only).
    error: Optional[str] = None


class PlanCatalog:
    """A disk-backed, crash-safe store of analyzed-schema artifacts.

    One catalog owns a directory; records are files named by a digest of
    the ordered relation tuple.  All methods are thread-safe, and multiple
    processes may share one directory (writers serialize on the advisory
    ``.lock`` file; readers need no lock — they only ever see a complete
    old record or a complete new one, thanks to the atomic-rename
    protocol).

    The serving-path contract: :meth:`load` and :meth:`store` **never
    raise**.  Corruption quarantines, I/O failure degrades, and both are
    visible in :attr:`stats` — see the module docstring.
    """

    _RECORD_SUFFIX = ".plan"
    _QUARANTINE_SUFFIX = ".corrupt"

    def __init__(self, directory: str, *, create: bool = True) -> None:
        self.directory = os.path.abspath(directory)
        self.stats = CatalogStats()
        self._lock = threading.Lock()
        self._consecutive_errors = 0
        #: digest -> artifact count last known to be on disk; lets `store`
        #: skip rewriting records that already hold everything.
        self._fingerprints: Dict[str, int] = {}
        if create:
            try:
                os.makedirs(self.directory, exist_ok=True)
            except OSError:
                self._note_io_error()
        elif not os.path.isdir(self.directory):
            raise CatalogError(f"catalog directory {self.directory} does not exist")

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"PlanCatalog({self.directory!r})"

    # -- keys ------------------------------------------------------------------

    @staticmethod
    def key_of(schema: SchemaLike) -> Tuple[RelationSchema, ...]:
        """The catalog key: the **ordered** relation tuple."""
        return _as_database_schema(schema).relations

    @staticmethod
    def key_digest(key: Tuple[RelationSchema, ...]) -> str:
        """Stable cross-process digest of a catalog key."""
        encoded = "\x1e".join(
            "\x1f".join(relation.sorted_attributes()) for relation in key
        )
        return hashlib.sha256(encoded.encode("utf-8")).hexdigest()[:32]

    def record_path(self, schema: SchemaLike) -> str:
        """The record file a schema's artifacts live in."""
        return os.path.join(
            self.directory,
            self.key_digest(self.key_of(schema)) + self._RECORD_SUFFIX,
        )

    # -- degraded-mode accounting ----------------------------------------------

    def _note_io_error(self) -> None:
        with self._lock:
            self.stats.degraded += 1
            self._consecutive_errors += 1
            if self._consecutive_errors >= MAX_CONSECUTIVE_IO_ERRORS:
                self.stats.disabled = True

    def _note_io_success(self) -> None:
        with self._lock:
            self._consecutive_errors = 0

    @property
    def disabled(self) -> bool:
        """True once the catalog latched into in-memory-only mode."""
        with self._lock:
            return self.stats.disabled

    # -- the writer lock -------------------------------------------------------

    def _acquire_writer_lock(self) -> Optional[int]:
        """Take the advisory cross-process writer lock (None: unavailable).

        Advisory by design: readers never block, and a platform without
        ``fcntl`` simply relies on atomic rename (last writer wins, which
        is safe — records are pure functions of their key plus a monotone
        artifact set).
        """
        if fcntl is None:  # pragma: no cover - non-POSIX
            return None
        try:
            descriptor = os.open(
                os.path.join(self.directory, ".lock"),
                os.O_CREAT | os.O_WRONLY,
                0o644,
            )
            fcntl.flock(descriptor, fcntl.LOCK_EX)
        except OSError:
            return None
        return descriptor

    @staticmethod
    def _release_writer_lock(descriptor: Optional[int]) -> None:
        if descriptor is None:
            return
        try:
            fcntl.flock(descriptor, fcntl.LOCK_UN)
        except OSError:  # pragma: no cover - unlock cannot realistically fail
            pass
        finally:
            os.close(descriptor)

    # -- quarantine ------------------------------------------------------------

    def _quarantine(self, path: str, error: CatalogCorruptionError) -> None:
        """Move a corrupt record aside (never raising) and count it."""
        try:
            os.replace(path, path + self._QUARANTINE_SUFFIX)
            with self._lock:
                self.stats.quarantined += 1
        except OSError:
            # Could not even rename (read-only mount?): degrade.  The next
            # read will re-detect the corruption; serving stays up either way.
            self._note_io_error()

    # -- load / store ----------------------------------------------------------

    def load(self, schema: SchemaLike):
        """The persisted analysis for ``schema``, or ``None`` (never raises).

        A verified record restores to a pre-populated
        :class:`~repro.engine.analysis.AnalyzedSchema`; a missing record is
        a miss; a corrupt record is quarantined and served as a miss; an
        I/O failure degrades and is served as a miss.
        """
        database_schema = _as_database_schema(schema)
        key = database_schema.relations
        digest = self.key_digest(key)
        path = os.path.join(self.directory, digest + self._RECORD_SUFFIX)
        if self.disabled:
            with self._lock:
                self.stats.misses += 1
            return None
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            with self._lock:
                self.stats.misses += 1
            return None
        except OSError:
            self._note_io_error()
            with self._lock:
                self.stats.misses += 1
            return None
        self._note_io_success()
        try:
            payload = _unpack_single(data, KIND_ANALYSIS, path=path)
            record = _loads(payload, path=path)
            if not isinstance(record, dict) or record.get("kind") != "analysis":
                raise CatalogCorruptionError(
                    "analysis record has an unexpected structure", path=path
                )
        except CatalogCorruptionError as error:
            self._quarantine(path, error)
            with self._lock:
                self.stats.misses += 1
            return None
        if record["key"] != key:
            with self._lock:
                self.stats.key_mismatches += 1
                self.stats.misses += 1
            return None
        try:
            # The key matched the requested relation tuple exactly, so the
            # caller's schema object is grafted in — it keeps the compiled
            # backend's per-state identity fast path working for states the
            # caller builds against its own schema.
            restored = restore_analysis(record, schema=database_schema)
        except Exception:
            # A record that verified but whose artifacts misbehave on
            # restore (e.g. written by a newer minor build): same defense.
            self._quarantine(
                path, CatalogCorruptionError("restore failed", path=path)
            )
            with self._lock:
                self.stats.misses += 1
            return None
        with self._lock:
            self.stats.hits += 1
            self._fingerprints[digest] = record["artifacts"]
        return restored

    def store(self, analysis) -> bool:
        """Persist an analysis's artifacts durably (never raises).

        Returns True when the on-disk record is current after the call —
        because it was written, or because it already held every artifact
        the analysis has (the fingerprint skip, which is what keeps hot
        serving paths from rewriting an unchanged record on every batch).
        """
        if self.disabled:
            return False
        record = snapshot_analysis(analysis)
        digest = self.key_digest(record["key"])
        with self._lock:
            known = self._fingerprints.get(digest)
            if known is not None and known >= record["artifacts"]:
                self.stats.store_skips += 1
                return True
        path = os.path.join(self.directory, digest + self._RECORD_SUFFIX)
        data = _pack_record(KIND_ANALYSIS, _dumps(record))
        lock_descriptor = self._acquire_writer_lock()
        try:
            _atomic_write(path, data)
        except OSError:
            self._note_io_error()
            return False
        finally:
            self._release_writer_lock(lock_descriptor)
        self._note_io_success()
        with self._lock:
            self.stats.stores += 1
            self._fingerprints[digest] = record["artifacts"]
        return True

    # -- inspection / maintenance ----------------------------------------------

    def _record_names(self) -> List[str]:
        try:
            names = sorted(
                name
                for name in os.listdir(self.directory)
                if name.endswith(self._RECORD_SUFFIX)
            )
        except OSError:
            self._note_io_error()
            return []
        self._note_io_success()
        return names

    def records(self) -> List[CatalogRecordInfo]:
        """Inspect every record (read-only: corrupt entries are reported,
        not quarantined — that is :meth:`verify`'s job)."""
        infos: List[CatalogRecordInfo] = []
        for name in self._record_names():
            path = os.path.join(self.directory, name)
            try:
                size = os.path.getsize(path)
                mtime = os.path.getmtime(path)
                with open(path, "rb") as handle:
                    data = handle.read()
            except OSError:
                self._note_io_error()
                continue
            try:
                payload = _unpack_single(data, KIND_ANALYSIS, path=path)
                record = _loads(payload, path=path)
                if not isinstance(record, dict) or record.get("kind") != "analysis":
                    raise CatalogCorruptionError(
                        "analysis record has an unexpected structure", path=path
                    )
                infos.append(
                    CatalogRecordInfo(
                        name=name,
                        path=path,
                        size=size,
                        mtime=mtime,
                        ok=True,
                        schema=record["schema"].to_notation(),
                        artifacts=record["artifacts"],
                    )
                )
            except CatalogCorruptionError as error:
                infos.append(
                    CatalogRecordInfo(
                        name=name,
                        path=path,
                        size=size,
                        mtime=mtime,
                        ok=False,
                        error=str(error),
                    )
                )
        return infos

    def verify(self) -> Dict[str, Any]:
        """Verify every record, quarantining the corrupt ones.

        Returns ``{"checked", "ok", "quarantined": [names...]}``.  This is
        the cold-start integrity sweep: run it after a crash (or from
        ``repro catalog verify``) and the catalog is guaranteed to hold only
        records that decode cleanly end to end.
        """
        checked = 0
        ok = 0
        quarantined: List[str] = []
        for info in self.records():
            checked += 1
            if info.ok:
                ok += 1
            else:
                self._quarantine(
                    info.path, CatalogCorruptionError(info.error or "corrupt")
                )
                quarantined.append(info.name)
        return {"checked": checked, "ok": ok, "quarantined": quarantined}

    def gc(self, *, keep: Optional[int] = None) -> Dict[str, Any]:
        """Collect quarantined records and orphaned temp files.

        Removes ``*.corrupt`` files (they have served their diagnostic
        purpose once inspected) and ``.tmp.*`` leftovers of writers that
        died before renaming.  With ``keep=N`` the newest ``N`` records (by
        mtime) are retained and the rest deleted — a size bound for
        long-lived catalog directories.
        """
        removed_corrupt = 0
        removed_temp = 0
        removed_records = 0
        try:
            names = os.listdir(self.directory)
        except OSError:
            self._note_io_error()
            return {
                "removed_corrupt": 0,
                "removed_temp": 0,
                "removed_records": 0,
            }
        for name in names:
            path = os.path.join(self.directory, name)
            if name.endswith(self._QUARANTINE_SUFFIX):
                try:
                    os.unlink(path)
                    removed_corrupt += 1
                except OSError:
                    self._note_io_error()
            elif name.startswith(".tmp.") and name.endswith(".part"):
                try:
                    os.unlink(path)
                    removed_temp += 1
                except OSError:
                    self._note_io_error()
        if keep is not None and keep >= 0:
            records = []
            for name in self._record_names():
                path = os.path.join(self.directory, name)
                try:
                    records.append((os.path.getmtime(path), path))
                except OSError:
                    continue
            records.sort(reverse=True)
            for _, path in records[keep:]:
                try:
                    os.unlink(path)
                    removed_records += 1
                except OSError:
                    self._note_io_error()
        return {
            "removed_corrupt": removed_corrupt,
            "removed_temp": removed_temp,
            "removed_records": removed_records,
        }


# -- the default catalog --------------------------------------------------------

_DEFAULT_LOCK = threading.Lock()
_DEFAULT_CATALOG: Optional[PlanCatalog] = None


def default_catalog() -> Optional[PlanCatalog]:
    """The process-wide catalog named by ``REPRO_CATALOG_DIR``, or ``None``.

    Memoized per directory, so every ``analyze`` call shares one stats
    object and one degraded-mode latch; changing the environment variable
    mid-process switches to (and memoizes) the new directory.
    """
    global _DEFAULT_CATALOG
    path = os.environ.get(ENV_CATALOG_DIR)
    if not path:
        return None
    absolute = os.path.abspath(path)
    with _DEFAULT_LOCK:
        if _DEFAULT_CATALOG is None or _DEFAULT_CATALOG.directory != absolute:
            _DEFAULT_CATALOG = PlanCatalog(absolute)
        return _DEFAULT_CATALOG


def resolve_catalog(
    catalog: Union[PlanCatalog, str, None],
) -> Optional[PlanCatalog]:
    """Normalize a catalog argument: instance, directory path, or ``None``
    (meaning the environment-configured default, which may itself be absent).
    """
    if catalog is None:
        return default_catalog()
    if isinstance(catalog, PlanCatalog):
        return catalog
    return PlanCatalog(str(catalog))
