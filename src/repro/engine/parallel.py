"""Sharded multi-process execution for batched plan serving, with supervision.

Semijoin-program serving is embarrassingly parallel across database states:
one full-reducer pass plus bottom-up join per Yannakakis touches only its own
state, so a batch of independent states shards cleanly across a process pool.
This module puts that behind two entry points:

* ``PreparedQuery.execute_many(states, backend="parallel", workers=N)`` — a
  one-shot pool per call (pays pool spawn every time; fine for large batches);
* :class:`ParallelExecutor` — a reusable context manager owning a long-lived
  pool, so serving processes pay the spawn cost once and every later batch is
  pure dispatch.

**The serialization boundary.**  Compiled plans hold ``itemgetter`` programs
and closures and are deliberately not picklable, so nothing plan-shaped ever
crosses a process boundary.  What does cross is a :class:`PlanSpec` — the
ordered relation tuple, the target, the root and the backend knobs — plus the
shard's database states; each worker rebuilds the prepared query from the
spec through :func:`repro.engine.analysis.prepared_from_spec` (hitting the
worker's own analysis LRU) and caches it in worker-local storage keyed by the
spec.  The first shard a worker sees for a spec pays analysis + compilation
once; every later shard is pure execution.  Worker interners are independent
by construction, which is sound because integer codes are a process-private
encoding detail: answers are decoded to plain values inside the worker before
they are shipped back (see the lifecycle notes in
:mod:`repro.relational.compiled`).

**Sharding.**  States are deduplicated (verbatim duplicates execute once),
then grouped by estimated cost — total tuple count, assigned largest-first to
the least-loaded shard (LPT scheduling) — so one heavy state cannot serialize
the batch behind it.  Shards are submitted heaviest-first and results are
reassembled in input order; per-shard :class:`ExecutionStats` are merged into
one :class:`ParallelStats` with per-worker attribution, shared by every run
of the batch, and every run reports ``backend="parallel"``.

**Supervision (PR 6).**  A long-lived serving pool must survive the things
processes do: crash, hang, and choke on states that cannot cross a pickle
boundary.  :meth:`ParallelExecutor.execute_many` therefore runs a
supervision loop rather than a blocking gather:

* **worker death** (``BrokenProcessPool`` — segfault, ``os._exit``, OOM
  kill) respawns the pool within a bounded per-batch budget
  (``max_respawns``) and resubmits only the shards whose results were lost;
* **per-shard timeouts** (``shard_timeout=`` /
  ``REPRO_PARALLEL_SHARD_TIMEOUT``) detect hung workers: the pool is killed
  and respawned, the overdue shard is charged a failure, and innocent
  in-flight shards are resubmitted without penalty.  When a timeout is
  armed, at most ``workers`` shards are dispatched at a time so a shard's
  deadline clock starts when it can actually run, not when it enters a
  queue;
* **retry with exponential backoff** (``max_retries=`` /
  ``REPRO_PARALLEL_MAX_RETRIES``): a failed or timed-out shard is
  resubmitted up to ``max_retries`` times (sleeping
  ``retry_backoff * 2**(attempt-1)`` between attempts), after which it is
  **bisected** — split in half and re-executed — until the offending
  state(s) are isolated;
* **poison-state quarantine**: a state that still fails alone is retried
  once on the in-process compiled backend (which clears pickle failures and
  worker-only crashes); only if that also fails is it quarantined.  Under
  ``failure_policy="raise"`` (default) the batch then raises a structured
  :class:`~repro.exceptions.ShardExecutionError` carrying per-state
  attribution; under ``failure_policy="degrade"`` the batch returns with
  ``None`` at the quarantined input positions and the indices reported in
  :attr:`ParallelStats.quarantined`.  Timed-out states are never retried
  in-process (an in-process hang would stall the serving process itself) —
  they quarantine directly with a
  :class:`~repro.exceptions.ShardTimeoutError`.

Attribution under pool breakage is necessarily pessimistic: when a worker
dies, every in-flight shard is charged an attempt, because the parent cannot
know which shard the dead worker was executing.  Innocent shards may
therefore be bisected or even fall back in-process — extra work, never a
wrong answer — and every recovery path is held hypothesis-equal to
``backend="classic"`` by the fault-injection suite
(:mod:`repro.engine.faults`, ``tests/engine/test_fault_tolerance.py``).

Worker-count resolution honours the ``REPRO_PARALLEL_MAX_WORKERS``
environment variable (a hard cap, used by CI to keep the suite stable on
small runners); the start method defaults to ``fork`` on Linux (cheapest
spawn; see ``docs/api.md`` for the fork/spawn trade-offs) and ``spawn``
elsewhere, and can be forced with ``REPRO_PARALLEL_START_METHOD`` or the
constructor argument.  Failure semantics are documented end to end in
``docs/robustness.md``.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import pickle
import secrets
import sys
import time
from collections import OrderedDict, deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field, replace
from heapq import heappop, heappush
from multiprocessing import shared_memory
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..exceptions import (
    ExecutionError,
    ShardExecutionError,
    ShardTimeoutError,
    StatePicklingError,
    WorkerCrashError,
)
from ..relational.compiled import (
    DEFAULT_MAX_INTERNED_VALUES,
    ExecutionStats,
    shm_decode_state,
    shm_encode_state,
)
from ..relational.database import DatabaseState
from ..relational.vectorized import numpy_available, shm_attach_state
from ..relational.yannakakis import YannakakisRun
from ..hypergraph.schema import DatabaseSchema, RelationSchema
from . import faults

# Module-level on purpose: the shard body and the shm attach consult the
# shape-aware profitability gate on every shard, and ``prepared`` imports
# this module only lazily, so the import is cycle-free and hoisting it out
# of the per-shard hot path costs nothing at import time.
from .prepared import resolve_backend_for, vectorized_batch_profitable

__all__ = [
    "ENV_MAX_RETRIES",
    "ENV_MAX_WORKERS",
    "ENV_SHARD_TIMEOUT",
    "ENV_START_METHOD",
    "ENV_TRANSPORT",
    "FAILURE_POLICIES",
    "SHM_NAME_PREFIX",
    "TRANSPORTS",
    "ParallelExecutor",
    "ParallelStats",
    "PlanSpec",
    "execute_in_process",
    "plan_shards",
    "resolve_failure_policy",
    "resolve_max_retries",
    "resolve_shard_timeout",
    "resolve_start_method",
    "resolve_transport",
    "resolve_worker_count",
]

#: Environment variable holding a hard cap on resolved worker counts.
ENV_MAX_WORKERS = "REPRO_PARALLEL_MAX_WORKERS"

#: Environment variable forcing the multiprocessing start method.
ENV_START_METHOD = "REPRO_PARALLEL_START_METHOD"

#: Environment variable holding the default per-shard timeout (seconds).
ENV_SHARD_TIMEOUT = "REPRO_PARALLEL_SHARD_TIMEOUT"

#: Environment variable holding the default per-shard retry budget.
ENV_MAX_RETRIES = "REPRO_PARALLEL_MAX_RETRIES"

#: Environment variable holding the default state transport.
ENV_TRANSPORT = "REPRO_PARALLEL_TRANSPORT"

#: Accepted values for ``failure_policy``.
FAILURE_POLICIES = ("raise", "degrade")

#: Accepted values for ``transport``: ``pickle`` ships shard states through
#: the pool's argument pipe; ``shm`` packs them into one
#: ``multiprocessing.shared_memory`` segment per shard (see the codec notes
#: in :mod:`repro.relational.compiled`).
TRANSPORTS = ("pickle", "shm")

#: Name prefix of every shared-memory segment this module creates.  The
#: leak-check tests (and operators) can audit ``/dev/shm`` for leftovers by
#: this prefix; cleanup is wired into every executor exit path.
SHM_NAME_PREFIX = "repro-shm-"

_SHM_COUNTER = itertools.count()

#: Default per-shard retry budget (attempts beyond the first).
DEFAULT_MAX_RETRIES = 2

#: Default per-batch pool-respawn budget.  Each worker death *and* each
#: timeout kill consumes one unit; exhausting it raises
#: :class:`~repro.exceptions.WorkerCrashError` regardless of the failure
#: policy, because a pool that cannot stay alive is a systemic failure, not
#: a per-state one.
DEFAULT_MAX_RESPAWNS = 8

#: Default base for exponential retry backoff (seconds); attempt ``n``
#: sleeps ``retry_backoff * 2**(n-1)`` before resubmission.
DEFAULT_RETRY_BACKOFF = 0.05


def resolve_worker_count(workers: Optional[int]) -> int:
    """Resolve a requested worker count.

    ``None`` means one worker per available CPU; explicit requests are taken
    at face value (a pool wider than the machine still overlaps pickling with
    execution).  Either way the :data:`ENV_MAX_WORKERS` cap clamps the
    result, so operators and CI can bound fan-out without touching call
    sites.
    """
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    cap_text = os.environ.get(ENV_MAX_WORKERS)
    if cap_text:
        try:
            cap = int(cap_text)
        except ValueError:
            raise ValueError(
                f"{ENV_MAX_WORKERS} must be an integer, got {cap_text!r}"
            ) from None
        if cap < 1:
            # A cap of 0 or less is a misconfiguration; ignoring it would
            # silently unclamp the very pools it was set to bound.
            raise ValueError(f"{ENV_MAX_WORKERS} must be >= 1, got {cap}")
        workers = min(workers, cap)
    return workers


def resolve_start_method(method: Optional[str] = None) -> str:
    """Pick the multiprocessing start method for a pool.

    Explicit argument beats :data:`ENV_START_METHOD` beats the platform
    default: ``fork`` on Linux (by far the cheapest spawn, and the child
    inherits warm analysis caches), ``spawn`` everywhere else.  macOS lists
    ``fork`` as available but forking there is unsafe under Apple system
    libraries (CPython itself switched its default to ``spawn`` in 3.8), so
    only Linux opts into it by default.
    """
    if method is None:
        method = os.environ.get(ENV_START_METHOD) or None
    available = multiprocessing.get_all_start_methods()
    if method is None:
        if sys.platform.startswith("linux") and "fork" in available:
            return "fork"
        return "spawn"
    if method not in available:
        raise ValueError(
            f"start method {method!r} not available here (have: {', '.join(available)})"
        )
    return method


def resolve_shard_timeout(timeout: Optional[float]) -> Optional[float]:
    """Resolve a per-shard timeout: explicit beats :data:`ENV_SHARD_TIMEOUT`.

    ``None`` with the env var unset means *no timeout* (a hung worker blocks
    the batch, exactly as a hung in-process execution would).  The timeout
    bounds one shard *attempt*, measured from dispatch to a free worker.
    """
    if timeout is None:
        text = os.environ.get(ENV_SHARD_TIMEOUT)
        if not text:
            return None
        try:
            timeout = float(text)
        except ValueError:
            raise ValueError(
                f"{ENV_SHARD_TIMEOUT} must be a number of seconds, got {text!r}"
            ) from None
    if timeout <= 0:
        raise ValueError(f"shard_timeout must be > 0, got {timeout}")
    return timeout


def resolve_max_retries(retries: Optional[int]) -> int:
    """Resolve the per-shard retry budget: explicit beats
    :data:`ENV_MAX_RETRIES` beats :data:`DEFAULT_MAX_RETRIES` (2)."""
    if retries is None:
        text = os.environ.get(ENV_MAX_RETRIES)
        if not text:
            return DEFAULT_MAX_RETRIES
        try:
            retries = int(text)
        except ValueError:
            raise ValueError(
                f"{ENV_MAX_RETRIES} must be an integer, got {text!r}"
            ) from None
    if retries < 0:
        raise ValueError(f"max_retries must be >= 0, got {retries}")
    return retries


def resolve_failure_policy(policy: str) -> str:
    """Validate a ``failure_policy`` value (``raise`` or ``degrade``)."""
    if policy not in FAILURE_POLICIES:
        raise ValueError(
            f"failure_policy must be one of {', '.join(FAILURE_POLICIES)}, "
            f"got {policy!r}"
        )
    return policy


def resolve_transport(transport: Optional[str]) -> str:
    """Resolve a state transport: explicit beats :data:`ENV_TRANSPORT` beats
    ``pickle`` (the conservative default — ``shm`` wins on value-heavy
    batches but needs a POSIX shared-memory filesystem)."""
    if transport is None:
        transport = os.environ.get(ENV_TRANSPORT) or "pickle"
    if transport not in TRANSPORTS:
        raise ValueError(
            f"transport must be one of {', '.join(TRANSPORTS)}, got {transport!r}"
        )
    return transport


@dataclass(frozen=True)
class PlanSpec:
    """The picklable identity of a prepared query.

    Everything a worker needs to rebuild (and cache) the plan: the **ordered**
    relation tuple (plans are positional — order is part of the identity, see
    the analysis-cache notes in :mod:`repro.engine.analysis`), the projection
    target, the qual-tree root, and the backend knobs.
    ``max_interned_values`` is carried *resolved* (the literal cap, ``None``
    meaning unbounded); it **seeds** the plan a worker builds fresh for this
    spec.  A plan already resident in the worker — inherited over ``fork``,
    or shared through the analysis LRU with a spec differing only in cap —
    keeps its existing policy (one plan has one interner and therefore one
    rollover policy; see ``_plan_for_spec``).

    Specs are frozen, hashable and comparable, which makes them directly
    usable as worker-side cache keys; an unpickled spec compares equal to the
    original, so a worker that already compiled it never compiles again.
    """

    relations: Tuple[RelationSchema, ...]
    target: RelationSchema
    root: int = 0
    max_interned_values: Optional[int] = DEFAULT_MAX_INTERNED_VALUES
    #: Serial kernel the workers *prefer* for shards (``"compiled"`` or
    #: ``"vectorized"``): the capability verdict of the parent process,
    #: carried so every worker agrees with what the parent would have
    #: picked serially.  Workers still downgrade a vectorized preference to
    #: compiled shard by shard when the states are too small to amortize
    #: the array toll (``_shard_backend``) — a batch-dependent verdict that
    #: must not live in the spec, which keys pinned pools and worker plan
    #: caches.
    serial_backend: str = "compiled"
    #: True when the spec identifies a cyclic plan
    #: (:class:`~repro.engine.cyclic.CyclicPreparedQuery`): workers rebuild
    #: through ``prepare_cyclic`` (treefication prologue + inner tree plan)
    #: and the shm transport's zero-copy vectorized attach is skipped — the
    #: wire carries the *original* relations, while the vectorized plan runs
    #: over the projection's node schema.
    cyclic: bool = False

    @classmethod
    def of(cls, prepared) -> "PlanSpec":
        """The spec of a :class:`~repro.engine.prepared.PreparedQuery`
        (normally reached through ``prepared.plan_spec()``)."""
        serial = _default_serial_backend()
        # Carry the interner cap of the serial plan the workers will run;
        # when only the *other* serial plan is resident (a caller configured
        # prepared.compiled directly, say), its cap still describes the
        # intent and seeds the workers.
        preferred = (
            prepared._vectorized
            if serial == "vectorized"
            else prepared._compiled
        )
        fallback = (
            prepared._compiled
            if serial == "vectorized"
            else prepared._vectorized
        )
        plan = preferred if preferred is not None else fallback
        cap = (
            plan.max_interned_values
            if plan is not None
            else DEFAULT_MAX_INTERNED_VALUES
        )
        return cls(
            relations=prepared.schema.relations,
            target=prepared.target,
            root=prepared.root,
            max_interned_values=cap,
            serial_backend=serial,
            cyclic=bool(getattr(prepared, "is_cyclic_plan", False)),
        )

    def describe(self) -> str:
        """Human readable one-liner (for logs and CLI output)."""
        relations = ",".join(r.to_notation() for r in self.relations)
        return f"π_{self.target.to_notation() or '{}'}(⋈ {relations}) @R{self.root}"


# -- worker side ---------------------------------------------------------------


def _default_serial_backend() -> str:
    """The serial kernel ``backend="auto"`` resolves to in this process
    (mirrors :func:`repro.engine.prepared.resolve_backend`, without the
    import cycle: ``prepared`` imports this module lazily)."""
    return "vectorized" if numpy_available() else "compiled"


def _serial_plan(prepared, serial_backend: str):
    """The prepared query's plan object for a spec's serial backend."""
    if serial_backend == "vectorized":
        return prepared.vectorized
    return prepared.compiled


def _shard_backend(
    preferred: str, states: Sequence[DatabaseState]
) -> str:
    """The serial kernel for one shard: the spec's preference, downgraded
    to compiled for shards of tiny states.

    The spec carries the *capability* preference (``"vectorized"`` whenever
    the parent had numpy) so it stays a stable cache key for pinned pools
    and worker plan caches; profitability is per batch, so each shard
    applies the same mean-rows gate the serial ``auto`` path applies
    (:func:`repro.engine.prepared.resolve_backend_for`).
    """
    if preferred != "vectorized":
        return preferred
    return resolve_backend_for("auto", states)

#: Worker-local plan cache: spec → PreparedQuery (with its compiled plan
#: forced).  Lives in the worker process's module globals; bounded so a
#: worker serving many distinct plans cannot grow without limit.  Within the
#: bound, each spec is compiled at most once per worker — the property the
#: call-count tests pin down.
_PLAN_CACHE_MAX = 128
_worker_plans: "OrderedDict[PlanSpec, Any]" = OrderedDict()


def _plan_for_spec(spec: PlanSpec) -> Tuple[Any, int]:
    """The worker's prepared query for ``spec`` plus a did-compile flag (0/1).

    On a miss the query is rebuilt through the analysis LRU
    (:func:`~repro.engine.analysis.prepared_from_spec`) and its compiled plan
    is forced immediately, so the compile cost lands on the first shard and
    later shards are pure execution.
    """
    prepared = _worker_plans.get(spec)
    if prepared is not None:
        _worker_plans.move_to_end(spec)
        return prepared, 0
    from .analysis import prepared_from_spec

    prepared = prepared_from_spec(spec)
    # `compiled_now` counts *actual* plan builds: a fork-started worker
    # inherits the parent's analysis LRU, so the rebuilt query may already
    # carry its serial plan and the first shard pays nothing.
    resident = (
        prepared._vectorized
        if spec.serial_backend == "vectorized"
        else prepared._compiled
    )
    compiled_now = 1 if resident is None else 0
    # The spec's interner cap *seeds* a freshly built plan.  A plan already
    # resident in this process — inherited over fork, or shared through the
    # analysis LRU with a spec differing only in cap — keeps its existing
    # policy: a plan has one interner and therefore one rollover policy, and
    # silently overwriting it would re-enable (or un-bound) epochs behind
    # the back of whichever client configured it first.
    if compiled_now:
        _serial_plan(prepared, spec.serial_backend).max_interned_values = (
            spec.max_interned_values
        )
        if spec.serial_backend == "vectorized" and prepared._compiled is None:
            # A vectorized-preferring worker still runs compiled on tiny
            # shards (``_shard_backend``); seed that plan's cap too so the
            # downgrade cannot un-bound the interner.
            prepared.compiled.max_interned_values = spec.max_interned_values
    _worker_plans[spec] = prepared
    if len(_worker_plans) > _PLAN_CACHE_MAX:
        _worker_plans.popitem(last=False)
    return prepared, compiled_now


def _run_shard(
    spec: PlanSpec, states: Tuple[DatabaseState, ...]
) -> Tuple[int, int, List[YannakakisRun], ExecutionStats]:
    """Shared worker body: execute one shard against the cached plan.

    Returns ``(pid, plans_compiled, runs, shard_stats)``; runs are decoded
    (plain-value relations) before pickling back, so worker-local interner
    codes never leave the process.  The injectable fault points of
    :mod:`repro.engine.faults` hook in here — once per shard, once per
    state — and cost four env lookups per shard when nothing is armed.
    """
    inject = faults.any_active()
    if inject:
        faults.on_shard_start()
    prepared, compiled_now = _plan_for_spec(spec)
    stats = ExecutionStats()
    # Both serial plans handle every schema, the empty one included, and
    # their encode paths are what keep ``stats.states`` accounting truthful.
    plan = _serial_plan(prepared, _shard_backend(spec.serial_backend, states))
    runs = []
    for state in states:
        if inject:
            faults.check_state(state)
        runs.append(plan.execute_state(state, stats=stats))
    return os.getpid(), compiled_now, runs, stats


def _execute_shard(
    spec: PlanSpec, states: Tuple[DatabaseState, ...]
) -> Tuple[int, int, List[YannakakisRun], ExecutionStats]:
    """Worker entry point for the pickle transport (states arrive as args)."""
    return _run_shard(spec, states)


def _execute_shard_shm(
    spec: PlanSpec, segment_name: str, extents: Tuple[Tuple[int, int], ...]
) -> Tuple[int, int, List[YannakakisRun], ExecutionStats]:
    """Worker entry point for the shm transport.

    Attaches the parent's segment by name, decodes one state per
    ``(offset, length)`` extent through the value-level codec
    (:func:`repro.relational.compiled.shm_decode_state`), detaches, and runs
    the shared shard body.  The attach must *not* register with the resource
    tracker: on CPython < 3.13 attaching registers the segment (there is no
    ``track=False`` yet), and under the fork start method the worker shares
    the parent's tracker process — a worker-side registration/unregistration
    would race the parent's ``unlink`` into double-UNREGISTER tracebacks,
    while under spawn the worker's own tracker would try to unlink a segment
    it does not own at worker exit.  Registration is therefore suppressed
    for the duration of the attach (workers run tasks serially, so the
    temporary patch cannot leak into another attach).  The parent is the
    sole owner of segment lifetime — workers never unlink.
    """
    from multiprocessing import resource_tracker

    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        segment = shared_memory.SharedMemory(name=segment_name)
    finally:
        resource_tracker.register = original_register
    try:
        schema = DatabaseSchema(spec.relations)
        buf = segment.buf
        if (
            spec.serial_backend == "vectorized"
            and spec.relations
            and not spec.cyclic
            and numpy_available()
            and not faults.any_active()
        ):
            attached = _attach_shard_vectorized(spec, buf, extents)
            if attached is not None:
                return attached
        states = []
        for offset, length in extents:
            chunk = buf[offset : offset + length]
            try:
                states.append(shm_decode_state(schema, chunk))
            finally:
                # Decode copies everything out, so the exported view can be
                # dropped eagerly — close() below would otherwise raise
                # BufferError over a still-exported buffer.
                chunk.release()
    finally:
        try:
            segment.close()
        except BufferError:  # pragma: no cover - defensive
            pass
    return _run_shard(spec, tuple(states))


def _attach_shard_vectorized(
    spec: PlanSpec, buf, extents: Tuple[Tuple[int, int], ...]
) -> Optional[Tuple[int, int, List[YannakakisRun], ExecutionStats]]:
    """Zero-copy shm fast path: feed the wire's raw-int64 blocks straight
    into vectorized encodings, skipping value decode + re-encode entirely.

    Returns ``None`` — and the caller falls back to the value-level decode
    path — when any state carries a non-INT64 block or the plan has
    dictionary-mode attributes (:func:`shm_attach_state` refuses both).
    States never materialize as :class:`DatabaseState` here, so the
    fault-injection hooks cannot see them; the caller therefore only takes
    this path when no faults are armed.  Encode-side stats count each
    attached slot as an encode (the wire block *is* the encoding); the
    worker's slot cache is bypassed, so repeated relations across a shard's
    states count as encodes rather than cache hits.
    """
    prepared, compiled_now = _plan_for_spec(spec)
    plan = prepared.vectorized
    vstates = []
    for offset, length in extents:
        chunk = buf[offset : offset + length]
        try:
            vstate = shm_attach_state(plan, chunk)
        finally:
            try:
                chunk.release()
            except BufferError:  # pragma: no cover - defensive
                pass
        if vstate is None:
            return None
        vstates.append(vstate)
    if vstates:
        total = sum(
            sum(encoding.n for encoding in vstate.encodings)
            for vstate in vstates
        )
        if not vectorized_batch_profitable(
            len(vstates), total, len(spec.relations)
        ):
            # Unprofitable shard (tiny states, or a wide schema of many
            # small relations): the array kernel's per-join toll outweighs
            # the zero-copy attach; let the caller decode values and run the
            # gated shard body (which will pick compiled).
            return None
    stats = ExecutionStats()
    runs = []
    for vstate in vstates:
        stats.states += 1
        stats.encoded_slots += len(spec.relations)
        runs.append(plan.execute(vstate, stats=stats))
    return os.getpid(), compiled_now, runs, stats


def _destroy_segment(segment: "shared_memory.SharedMemory") -> None:
    """Detach and unlink a parent-owned segment, surviving every race.

    ``close`` can raise ``BufferError`` if a view is still exported and
    ``unlink`` raises ``FileNotFoundError`` if the segment is already gone
    (double-release on overlapping cleanup paths); both are safe to ignore
    because the only goal is "no file left under /dev/shm afterwards".
    """
    try:
        segment.close()
    except Exception:  # pragma: no cover - defensive
        pass
    try:
        segment.unlink()
    except FileNotFoundError:
        pass
    except Exception:  # pragma: no cover - defensive
        pass


def _warmup() -> int:
    """No-op task used to spin a worker up ahead of real traffic."""
    return os.getpid()


# -- sharding ------------------------------------------------------------------


def plan_shards(costs: Sequence[int], shard_count: int) -> List[List[int]]:
    """Group item indices into at most ``shard_count`` cost-balanced shards.

    Longest-processing-time scheduling: items are taken largest-first and
    each goes to the currently lightest shard, so one heavy item ends up
    alone in its shard instead of serializing a whole chunk behind it.
    Deterministic (ties break on index), every index appears exactly once,
    empty shards are dropped, and within a shard indices stay in input order
    (reassembly relies on per-shard order).
    """
    if shard_count < 1:
        raise ValueError(f"shard_count must be >= 1, got {shard_count}")
    count = len(costs)
    shard_count = min(shard_count, count)
    if shard_count <= 1:
        return [list(range(count))] if count else []
    order = sorted(range(count), key=lambda index: (-costs[index], index))
    heap: List[Tuple[int, int]] = [(0, shard) for shard in range(shard_count)]
    shards: List[List[int]] = [[] for _ in range(shard_count)]
    for index in order:
        load, shard = heappop(heap)
        shards[shard].append(index)
        # +1 per item so zero-cost (empty) states still spread across shards.
        heappush(heap, (load + costs[index] + 1, shard))
    result = [sorted(shard) for shard in shards if shard]
    return result


# -- merged instrumentation ----------------------------------------------------


class ParallelStats(ExecutionStats):
    """Batch instrumentation merged across every shard of a parallel batch.

    Extends :class:`~repro.relational.compiled.ExecutionStats` (all counters
    summed over shards; lineage maps merged per (slot, key) — note that
    across *workers* the same (slot, key) index is built once per worker that
    touched the slot, since encodings are worker-local) with the parallel
    layer's own accounting: resolved ``workers``, shard count and sizes,
    total ``plan_compiles``, ``per_worker`` attribution keyed by worker pid,
    and the supervision counters of PR 6 — ``retries`` (shard resubmissions
    beyond first attempts), ``respawns`` (pool rebuilds after worker death
    or timeout kill), ``timeouts`` (shard attempts past ``shard_timeout``),
    ``bisections`` (failing shards split to isolate offenders),
    ``fallback_runs`` (states recovered on the in-process compiled backend),
    ``quarantined`` (input positions whose states could not be executed at
    all — non-empty only under ``failure_policy="degrade"``, since ``raise``
    surfaces them as a :class:`~repro.exceptions.ShardExecutionError`), and
    ``worker_crashes`` (pid → observed death count, best effort — a pid that
    died before ever reporting a shard appears here and not in
    ``per_worker``).
    """

    __slots__ = (
        "workers",
        "shard_sizes",
        "plan_compiles",
        "per_worker",
        "failure_policy",
        "retries",
        "respawns",
        "timeouts",
        "bisections",
        "fallback_runs",
        "quarantined",
        "quarantine_causes",
        "worker_crashes",
        "transport",
        "shm_segments",
        "shm_bytes",
        "routed_in_process",
    )

    def __init__(self, workers: int) -> None:
        super().__init__()
        self.workers = workers
        #: States per shard, in completion order (fallback runs excluded:
        #: ``states == sum(shard_sizes) + fallback_runs``).
        self.shard_sizes: List[int] = []
        self.plan_compiles = 0
        self.per_worker: Dict[int, Dict[str, int]] = {}
        self.failure_policy = "raise"
        self.retries = 0
        self.respawns = 0
        self.timeouts = 0
        self.bisections = 0
        self.fallback_runs = 0
        self.quarantined: List[int] = []
        #: Input position -> terminal exception for every quarantined state
        #: (the same attribution ``ShardExecutionError.causes`` carries under
        #: ``failure_policy="raise"``; populated under ``"degrade"`` so the
        #: streaming service can surface typed error items).
        self.quarantine_causes: Dict[int, BaseException] = {}
        self.worker_crashes: Dict[int, int] = {}
        #: State transport the batch used: ``pickle``, ``shm``, or ``none``
        #: (batch routed in-process without touching the pool).
        self.transport = "pickle"
        #: Shared-memory segments created for the batch (shm transport only).
        self.shm_segments = 0
        #: Total payload bytes shipped through shared memory.
        self.shm_bytes = 0
        #: States served on the in-process compiled backend because routing
        #: classified the batch as degenerate (no pool was spawned for them).
        self.routed_in_process = 0

    @property
    def shard_count(self) -> int:
        """Number of shards the batch was split into."""
        return len(self.shard_sizes)

    def record_shard(
        self,
        pid: int,
        compiled_now: int,
        state_count: int,
        shard_stats: ExecutionStats,
    ) -> None:
        """Fold one shard's result metadata into the merged view."""
        self.absorb(shard_stats)
        self.plan_compiles += compiled_now
        self.shard_sizes.append(state_count)
        info = self.per_worker.setdefault(
            pid,
            {
                "shards": 0,
                "states": 0,
                "plan_compiles": 0,
                "encoded_slots": 0,
                "keyset_builds": 0,
                "bucket_builds": 0,
                "interner_resets": 0,
            },
        )
        info["shards"] += 1
        info["states"] += state_count
        info["plan_compiles"] += compiled_now
        info["encoded_slots"] += shard_stats.encoded_slots
        info["keyset_builds"] += shard_stats.total_keyset_builds()
        info["bucket_builds"] += shard_stats.total_bucket_builds()
        info["interner_resets"] += shard_stats.interner_resets

    def record_crash(self, pid: int) -> None:
        """Note one observed worker death (best-effort attribution)."""
        self.worker_crashes[pid] = self.worker_crashes.get(pid, 0) + 1

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"ParallelStats(workers={self.workers}, shards={self.shard_count}, "
            f"states={self.states}, plan_compiles={self.plan_compiles}, "
            f"retries={self.retries}, respawns={self.respawns}, "
            f"quarantined={len(self.quarantined)})"
        )


# -- supervision ---------------------------------------------------------------


@dataclass
class _ShardTask:
    """One unit of supervised work: a set of unique-state indices.

    ``attempt`` counts failures charged so far; a task past the retry budget
    is bisected (size > 1) or sent to isolation handling (size 1).
    """

    indices: List[int]
    attempt: int = 0
    last_error: Optional[BaseException] = None
    timed_out: bool = False
    #: Charged on pool breakage without proof this task was executing (the
    #: parent cannot attribute a worker death to a shard).  An innocent task
    #: that exhausts retries this way still ends in a *correct* place — its
    #: bisected children, or the in-process fallback, simply succeed.
    pessimistic: bool = field(default=False, repr=False)


def _looks_like_pickling_error(error: BaseException) -> bool:
    """True for the exception shapes CPython raises on unpicklable args.

    ``pickle.PicklingError`` covers top-level functions and closures, but the
    pickle machinery also leaks ``TypeError`` ("cannot pickle '_thread.lock'
    object") and ``AttributeError`` ("Can't pickle local object ...")
    depending on where reduction fails, so those are matched by message.
    """
    if isinstance(error, pickle.PicklingError):
        return True
    return isinstance(error, (TypeError, AttributeError)) and (
        "pickle" in str(error).lower()
    )


class ParallelExecutor:
    """A reusable, supervised process pool for sharded batched execution.

    Lifecycle: construct once, call :meth:`execute_many` any number of times
    (for any number of distinct prepared queries — workers cache plans per
    spec), close via the context-manager protocol or :meth:`close`.  The pool
    itself is created lazily on first use; :meth:`ensure_started` forces it
    eagerly (and round-trips one no-op per worker) so serving processes can
    pay the spawn cost at startup instead of on the first request — the
    benchmarks time exactly this distinction.

    Fault tolerance is always on: worker death respawns the pool (within
    ``max_respawns`` per batch) and resubmits only the lost shards, and
    failed shards are retried/bisected per the module docstring.  The
    optional knobs — ``shard_timeout``, ``max_retries``, ``failure_policy``,
    ``retry_backoff`` — set executor-wide defaults that individual
    :meth:`execute_many` calls may override.  :attr:`healthy` and
    :attr:`restarts` expose the supervision state for serving dashboards.

    One-shot use (``PreparedQuery.execute_many(..., backend="parallel")``
    without an executor) constructs, uses and closes a pool per call, which
    only amortizes on large batches; long-lived serving should hold one
    executor.
    """

    #: Default shards per worker.  Oversharding (rather than one shard per
    #: worker) lets the pool rebalance when cost estimates are off: a worker
    #: that finishes its light shards early picks up queued ones instead of
    #: idling behind a mis-estimated heavy shard.
    DEFAULT_SHARDS_PER_WORKER = 4

    _UNSET = object()

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        start_method: Optional[str] = None,
        shards_per_worker: Optional[int] = None,
        shard_timeout: Optional[float] = None,
        max_retries: Optional[int] = None,
        failure_policy: str = "raise",
        max_respawns: Optional[int] = None,
        retry_backoff: Optional[float] = None,
        transport: Optional[str] = None,
    ) -> None:
        self._workers = resolve_worker_count(workers)
        self._start_method = resolve_start_method(start_method)
        shards = (
            self.DEFAULT_SHARDS_PER_WORKER
            if shards_per_worker is None
            else shards_per_worker
        )
        if shards < 1:
            raise ValueError(f"shards_per_worker must be >= 1, got {shards}")
        self._shards_per_worker = shards
        self._shard_timeout = resolve_shard_timeout(shard_timeout)
        self._max_retries = resolve_max_retries(max_retries)
        self._failure_policy = resolve_failure_policy(failure_policy)
        self._transport = resolve_transport(transport)
        respawns = DEFAULT_MAX_RESPAWNS if max_respawns is None else max_respawns
        if respawns < 0:
            raise ValueError(f"max_respawns must be >= 0, got {respawns}")
        self._max_respawns = respawns
        backoff = DEFAULT_RETRY_BACKOFF if retry_backoff is None else retry_backoff
        if backoff < 0:
            raise ValueError(f"retry_backoff must be >= 0, got {backoff}")
        self._retry_backoff = backoff
        self._pool: Optional[ProcessPoolExecutor] = None
        self._closed = False
        self._restarts = 0
        #: Live shm segments keyed by the future whose shard reads them.
        #: Every exit path — normal harvest, respawn, timeout kill, close —
        #: drains this map, so a BrokenProcessPool can never leak /dev/shm.
        self._segments: Dict[Future, shared_memory.SharedMemory] = {}
        #: Stats of the most recent completed :meth:`execute_many` batch.
        #: Callers that serialize batches (the executor is not thread-safe)
        #: read quarantine causes here even when a degraded batch returned
        #: only ``None`` runs to hang the stats object on.
        self.last_batch_stats: Optional[ParallelStats] = None

    # -- lifecycle -------------------------------------------------------------

    @property
    def workers(self) -> int:
        """The resolved worker count (request clamped by the env cap)."""
        return self._workers

    @property
    def start_method(self) -> str:
        """The multiprocessing start method the pool uses."""
        return self._start_method

    @property
    def healthy(self) -> bool:
        """Whether the executor can currently accept work.

        True while open with a live (or not-yet-started — the next batch
        spawns it) pool; False once closed or when the pool is broken and
        has not been respawned yet.  Supervision repairs a broken pool on
        the next :meth:`execute_many`, so an unhealthy-but-open executor is
        a transient state, not a terminal one.
        """
        if self._closed:
            return False
        pool = self._pool
        if pool is None:
            return True
        return not getattr(pool, "_broken", False)

    @property
    def restarts(self) -> int:
        """Lifetime pool respawns (worker deaths + timeout kills recovered)."""
        return self._restarts

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._closed:
            raise RuntimeError("ParallelExecutor is closed")
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self._workers,
                mp_context=multiprocessing.get_context(self._start_method),
            )
        return self._pool

    def ensure_started(self) -> int:
        """Create the pool and spin up every worker; returns the worker count.

        Round-trips one no-op task per worker so that later batches measure
        pure dispatch + execution, never process spawn.  (Workers that race
        to steal two no-ops leave a sibling cold — harmless, the pool tops
        itself up — but submitting ``workers`` tasks makes full spin-up the
        overwhelmingly common case.)
        """
        pool = self._ensure_pool()
        futures = [pool.submit(_warmup) for _ in range(self._workers)]
        for future in futures:
            future.result()
        return self._workers

    # -- shm segment lifetime --------------------------------------------------

    def _create_segment(self, nbytes: int) -> "shared_memory.SharedMemory":
        """Create a parent-owned shm segment with a collision-proof name.

        Named explicitly (pid + counter + random token) rather than letting
        the stdlib pick, so leak-check tests can find strays by the
        ``repro-shm-`` prefix and operators can attribute /dev/shm entries
        to a process.
        """
        while True:
            name = (
                f"{SHM_NAME_PREFIX}{os.getpid()}-"
                f"{next(_SHM_COUNTER)}-{secrets.token_hex(4)}"
            )
            try:
                return shared_memory.SharedMemory(
                    name=name, create=True, size=max(1, nbytes)
                )
            except FileExistsError:  # pragma: no cover - 32-bit token collision
                continue

    def _release_segment(self, future: Future) -> None:
        """Unlink the segment backing one harvested future, if any."""
        segment = self._segments.pop(future, None)
        if segment is not None:
            _destroy_segment(segment)

    def _release_all_segments(self) -> None:
        """Unlink every live segment (respawn, close, and error backstop)."""
        segments, self._segments = self._segments, {}
        for segment in segments.values():
            _destroy_segment(segment)

    def _kill_pool(self) -> None:
        """Tear the current pool down hard, surviving a broken one.

        Hung or dead workers are terminated directly (``shutdown`` alone
        would block behind a sleeping worker); every error is swallowed
        because the pool being un-shutdown-ably broken is exactly the case
        this path exists for.  Live shm segments go with the pool: the
        futures that were reading them are dead, and resubmission writes
        fresh segments.
        """
        pool, self._pool = self._pool, None
        self._release_all_segments()
        if pool is None:
            return
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:
                pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass

    def close(self) -> None:
        """Shut the pool down (idempotent); the executor is unusable after.

        Safe on a broken pool: shutdown errors from already-dead workers are
        swallowed, so ``close()``/``__exit__`` never raise over a crash that
        execution already reported.  Any shm segments still tracked (possible
        only if a batch aborted mid-flight) are unlinked here.
        """
        self._closed = True
        pool, self._pool = self._pool, None
        if pool is not None:
            try:
                pool.shutdown(wait=True)
            except Exception:
                pass
        self._release_all_segments()

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        status = "closed" if self._closed else ("idle" if self._pool is None else "live")
        return (
            f"ParallelExecutor(workers={self._workers}, "
            f"start_method={self._start_method!r}, restarts={self._restarts}, "
            f"{status})"
        )

    # -- execution -------------------------------------------------------------

    def execute_many(
        self,
        prepared,
        states: Iterable[DatabaseState],
        *,
        shard_timeout: Any = _UNSET,
        max_retries: Any = _UNSET,
        failure_policy: Any = _UNSET,
        transport: Any = _UNSET,
    ) -> List[Optional[YannakakisRun]]:
        """Execute a prepared query against every state across the pool.

        Semantics match ``prepared.execute_many(states)`` exactly — same
        results, same per-run accounting — with results in input order;
        verbatim duplicate states are executed once and share a run.  Every
        returned run reports ``backend="parallel"`` and carries one shared
        :class:`ParallelStats` for the batch.

        ``transport`` picks how states cross the process boundary for this
        batch: ``"pickle"`` ships them as task arguments, ``"shm"`` writes
        the value-level columnar encoding into one
        ``multiprocessing.shared_memory`` segment per shard and ships only
        ``(segment_name, extents)``.  Results always return over the pickle
        channel — only the (much larger) input states ride shared memory.

        The keyword arguments override the executor-wide defaults for this
        batch.  Under ``failure_policy="degrade"`` the returned list holds
        ``None`` at every input position whose state was quarantined (the
        same positions listed in ``ParallelStats.quarantined``); under the
        default ``"raise"`` policy a batch with quarantined states raises
        :class:`~repro.exceptions.ShardExecutionError` instead, and a pool
        that cannot be kept alive raises
        :class:`~repro.exceptions.WorkerCrashError` under either policy.
        """
        state_list = list(states)
        if not state_list:
            return []
        spec = prepared.plan_spec()
        timeout = (
            self._shard_timeout
            if shard_timeout is self._UNSET
            else resolve_shard_timeout(shard_timeout)
        )
        retries = (
            self._max_retries
            if max_retries is self._UNSET
            else resolve_max_retries(max_retries)
        )
        policy = (
            self._failure_policy
            if failure_policy is self._UNSET
            else resolve_failure_policy(failure_policy)
        )
        wire = (
            self._transport
            if transport is self._UNSET
            else resolve_transport(transport)
        )

        # Verbatim-duplicate dedup (mirrors CompiledPlan.execute_batch):
        # duplicate requests ride along for free and never cross the wire
        # twice.
        unique_states: List[DatabaseState] = []
        unique_of: Dict[DatabaseState, int] = {}
        positions: List[int] = []
        for state in state_list:
            index = unique_of.get(state)
            if index is None:
                index = len(unique_states)
                unique_of[state] = index
                unique_states.append(state)
            positions.append(index)

        costs = [state.total_rows() for state in unique_states]
        shards = plan_shards(costs, self._workers * self._shards_per_worker)
        # Heaviest shard first: it starts executing while the rest are still
        # being pickled onto the queue.
        shards.sort(key=lambda indices: -sum(costs[index] for index in indices))

        stats = ParallelStats(self._workers)
        stats.failure_policy = policy
        stats.transport = wire
        unique_runs: List[Optional[YannakakisRun]] = [None] * len(unique_states)
        quarantine: Dict[int, BaseException] = {}
        #: First input position per unique state, for human-facing attribution.
        first_position = {}
        for position, index in enumerate(positions):
            first_position.setdefault(index, position)

        tasks: "deque[_ShardTask]" = deque(_ShardTask(list(s)) for s in shards)
        inflight: Dict[Future, _ShardTask] = {}
        deadlines: Dict[Future, float] = {}
        respawns_left = self._max_respawns
        # When a timeout is armed, dispatch at most one shard per worker so a
        # shard's deadline clock starts when it can actually run; unlimited
        # dispatch would start the clock while the shard sits in the queue.
        max_inflight = self._workers if timeout is not None else None

        def fallback_in_process(index: int, error: BaseException) -> None:
            """Last resort for a state that failed in isolation: run it on
            the in-process compiled backend (clears pickle failures and
            worker-only crashes), quarantining it only if that fails too."""
            state = unique_states[index]
            try:
                faults.check_state(state)
                run = prepared.compiled.execute_state(state, stats=stats)
            except Exception as fallback_error:
                if _looks_like_pickling_error(error):
                    cause: BaseException = StatePicklingError(
                        f"state at input position {first_position[index]} "
                        f"cannot be pickled across the process boundary and "
                        f"also failed on the in-process backend",
                        state_index=first_position[index],
                    )
                    cause.__cause__ = fallback_error
                else:
                    cause = fallback_error
                quarantine[index] = cause
                return
            stats.fallback_runs += 1
            unique_runs[index] = run

        def fail_task(
            task: _ShardTask,
            error: BaseException,
            *,
            timed_out: bool = False,
            pessimistic: bool = False,
        ) -> None:
            """Charge one failure to a task and route it onward: resubmit
            (with backoff), bisect, or isolate."""
            task.attempt += 1
            task.last_error = error
            task.timed_out = timed_out
            task.pessimistic = pessimistic
            if timed_out:
                stats.timeouts += 1
            if _looks_like_pickling_error(error):
                # Deterministic failure: retrying the identical pickle is
                # pointless.  Probe each state individually — offenders go
                # straight to the in-process fallback, the rest re-run.
                survivors: List[int] = []
                for index in task.indices:
                    try:
                        pickle.dumps(unique_states[index])
                    except Exception:
                        fallback_in_process(index, error)
                    else:
                        survivors.append(index)
                if survivors:
                    if len(survivors) == len(task.indices):
                        # Nothing in the shard is unpicklable: the spec (or
                        # the result path) is the problem, and resubmitting
                        # cannot fix it.
                        raise StatePicklingError(
                            f"shard submission failed to pickle but every "
                            f"state pickles cleanly; the plan spec is the "
                            f"likely offender: {error}"
                        ) from error
                    tasks.append(_ShardTask(survivors))
                return
            if task.attempt <= retries:
                stats.retries += 1
                backoff = self._retry_backoff * (2 ** (task.attempt - 1))
                if backoff:
                    time.sleep(backoff)
                tasks.append(task)
                return
            if len(task.indices) > 1:
                # Retry budget exhausted on a multi-state shard: bisect to
                # isolate the offender(s).  Children restart their budgets;
                # sizes strictly shrink, so this terminates at singletons.
                stats.bisections += 1
                middle = len(task.indices) // 2
                tasks.append(_ShardTask(task.indices[:middle]))
                tasks.append(_ShardTask(task.indices[middle:]))
                return
            index = task.indices[0]
            if timed_out:
                # Never re-run a hanger in-process: an in-process hang would
                # stall the serving process with no supervisor above it.
                quarantine[index] = ShardTimeoutError(
                    f"state at input position {first_position[index]} timed "
                    f"out after {task.attempt} attempt(s) of "
                    f"{timeout:g}s each",
                    state_indices=(first_position[index],),
                )
                return
            fallback_in_process(index, error)

        def respawn(reason: BaseException) -> ProcessPoolExecutor:
            nonlocal respawns_left
            pool = self._pool
            if pool is not None:
                processes = getattr(pool, "_processes", None) or {}
                for pid, process in list(processes.items()):
                    exitcode = getattr(process, "exitcode", None)
                    if exitcode not in (None, 0):
                        stats.record_crash(pid)
            if respawns_left <= 0:
                self._kill_pool()
                raise WorkerCrashError(
                    f"pool respawn budget exhausted ({self._max_respawns} "
                    f"respawns) while executing the batch; last failure: "
                    f"{reason!r}"
                ) from reason
            respawns_left -= 1
            self._kill_pool()
            self._restarts += 1
            stats.respawns += 1
            return self._ensure_pool()

        def submit_task(
            pool: ProcessPoolExecutor, task: _ShardTask
        ) -> Optional[Future]:
            """Submit one shard over the selected transport.

            Returns ``None`` when the shard could not even be *encoded* for
            the shm transport (an unpicklable state fails synchronously in
            the parent, unlike the pickle transport where the same failure
            surfaces lazily from the submission) — the task has already been
            routed onward through ``fail_task``.  Pool-level submission
            errors propagate to the caller exactly as before.
            """
            if wire != "shm":
                return pool.submit(
                    _execute_shard,
                    spec,
                    tuple(unique_states[index] for index in task.indices),
                )
            try:
                blobs = [
                    shm_encode_state(unique_states[index]) for index in task.indices
                ]
            except Exception as error:
                fail_task(task, error)
                return None
            extents: List[Tuple[int, int]] = []
            offset = 0
            for blob in blobs:
                extents.append((offset, len(blob)))
                offset += len(blob)
            segment = self._create_segment(offset)
            try:
                position = 0
                for blob in blobs:
                    segment.buf[position : position + len(blob)] = blob
                    position += len(blob)
                future = pool.submit(
                    _execute_shard_shm, spec, segment.name, tuple(extents)
                )
            except BaseException:
                _destroy_segment(segment)
                raise
            self._segments[future] = segment
            stats.shm_segments += 1
            stats.shm_bytes += offset
            return future

        pool = self._ensure_pool()
        try:
            while tasks or inflight:
                # -- dispatch --------------------------------------------------
                submit_failure: Optional[BaseException] = None
                while tasks and (
                    max_inflight is None or len(inflight) < max_inflight
                ):
                    task = tasks.popleft()
                    if not task.indices:
                        continue
                    try:
                        future = submit_task(pool, task)
                    except BrokenExecutor as error:
                        tasks.appendleft(task)
                        submit_failure = error
                        break
                    except RuntimeError as error:
                        # A pool shut down underneath us (closed concurrently).
                        tasks.appendleft(task)
                        raise ExecutionError(
                            f"pool rejected shard submission: {error}"
                        ) from error
                    if future is None:
                        continue
                    inflight[future] = task
                    if timeout is not None:
                        deadlines[future] = time.monotonic() + timeout
                if submit_failure is not None:
                    lost = list(inflight.values())
                    inflight.clear()
                    deadlines.clear()
                    pool = respawn(submit_failure)
                    for task in lost:
                        fail_task(task, submit_failure, pessimistic=True)
                    continue
                if not inflight:
                    continue

                # -- harvest ---------------------------------------------------
                wait_timeout = None
                if deadlines:
                    wait_timeout = max(
                        0.0, min(deadlines.values()) - time.monotonic()
                    )
                done, _ = wait(
                    set(inflight), timeout=wait_timeout, return_when=FIRST_COMPLETED
                )
                breakage: Optional[BaseException] = None
                broken_tasks: List[_ShardTask] = []
                for future in done:
                    task = inflight.pop(future)
                    deadlines.pop(future, None)
                    self._release_segment(future)
                    try:
                        pid, compiled_now, runs, shard_stats = future.result()
                    except BrokenExecutor as error:
                        breakage = error
                        broken_tasks.append(task)
                    except Exception as error:
                        fail_task(task, error)
                    else:
                        stats.record_shard(
                            pid, compiled_now, len(task.indices), shard_stats
                        )
                        for index, run in zip(task.indices, runs):
                            unique_runs[index] = run
                if breakage is not None:
                    # The pool is dead: every other in-flight future is doomed
                    # too.  Reclaim them all; attribution is pessimistic (see
                    # the module docstring) but never wrong.
                    broken_tasks.extend(inflight.values())
                    inflight.clear()
                    deadlines.clear()
                    pool = respawn(breakage)
                    for task in broken_tasks:
                        fail_task(task, breakage, pessimistic=True)
                    continue

                # -- timeout scan ----------------------------------------------
                if deadlines:
                    now = time.monotonic()
                    overdue = [
                        future
                        for future, deadline in deadlines.items()
                        if deadline <= now
                    ]
                    if overdue:
                        overdue_tasks = [inflight[future] for future in overdue]
                        innocent = [
                            inflight[future]
                            for future in inflight
                            if future not in set(overdue)
                        ]
                        inflight.clear()
                        deadlines.clear()
                        hang = ShardTimeoutError(
                            f"shard exceeded shard_timeout={timeout:g}s; "
                            f"worker killed"
                        )
                        pool = respawn(hang)
                        for task in overdue_tasks:
                            fail_task(task, hang, timed_out=True)
                        # We killed the innocents ourselves — resubmit without
                        # charging an attempt.
                        tasks.extend(innocent)
        finally:
            # Backstop for every abnormal exit (spec-level pickling raise,
            # concurrent close, respawn-budget exhaustion): the segments of
            # doomed futures must not outlive the batch.  On the normal path
            # this is a no-op — every segment was released at harvest.
            self._release_all_segments()

        stats.deduped_states += len(state_list) - len(unique_states)

        missing = [
            index
            for index, run in enumerate(unique_runs)
            if run is None and index not in quarantine
        ]
        if missing:  # pragma: no cover - supervision invariant
            raise ExecutionError(
                f"internal error: {len(missing)} state(s) finished neither "
                f"executed nor quarantined"
            )

        if quarantine:
            causes: Dict[int, BaseException] = {}
            for position, index in enumerate(positions):
                if index in quarantine:
                    causes[position] = quarantine[index]
            stats.quarantined = sorted(causes)
            stats.quarantine_causes = dict(causes)
            if policy == "raise":
                raise ShardExecutionError(
                    f"{len(causes)} of {len(state_list)} state(s) could not "
                    f"be executed after retry, bisection and in-process "
                    f"fallback (positions {stats.quarantined}); pass "
                    f"failure_policy='degrade' for partial results",
                    causes,
                )

        retagged = [
            None if run is None else replace(run, backend="parallel", stats=stats)
            for run in unique_runs
        ]
        self.last_batch_stats = stats
        return [retagged[index] for index in positions]


# -- in-process routing --------------------------------------------------------


def execute_in_process(prepared, states: Iterable[DatabaseState]) -> List[YannakakisRun]:
    """Run a "parallel" batch on the in-process compiled backend, no pool.

    The adaptive router calls this when a batch bound for the parallel
    backend is degenerate — empty, a single unique state, or all-empty
    states — where spawning worker processes costs orders of magnitude more
    than just executing.  Results are indistinguishable from a real pool
    run: input order, duplicate dedup, ``backend="parallel"`` retagging, one
    shared :class:`ParallelStats` whose ``workers=0`` / ``transport="none"``
    / ``routed_in_process`` fields record that no pool was involved.  The
    serial kernel is the one ``backend="auto"`` resolves to for this batch
    (vectorized when numpy imports and the states are big enough to amortize
    the array toll), matching what the pool's workers would have run.
    """
    state_list = list(states)
    if not state_list:
        return []
    unique_runs: Dict[DatabaseState, YannakakisRun] = {}
    stats = ParallelStats(0)
    stats.transport = "none"
    plan = _serial_plan(
        prepared, _shard_backend(_default_serial_backend(), state_list)
    )
    for state in state_list:
        if state not in unique_runs:
            unique_runs[state] = plan.execute_state(state, stats=stats)
    stats.deduped_states += len(state_list) - len(unique_runs)
    stats.routed_in_process = len(unique_runs)
    stats.shard_sizes.append(len(unique_runs))
    return [
        replace(unique_runs[state], backend="parallel", stats=stats)
        for state in state_list
    ]
