"""Sharded multi-process execution for batched plan serving.

Semijoin-program serving is embarrassingly parallel across database states:
one full-reducer pass plus bottom-up join per Yannakakis touches only its own
state, so a batch of independent states shards cleanly across a process pool.
This module puts that behind two entry points:

* ``PreparedQuery.execute_many(states, backend="parallel", workers=N)`` — a
  one-shot pool per call (pays pool spawn every time; fine for large batches);
* :class:`ParallelExecutor` — a reusable context manager owning a long-lived
  pool, so serving processes pay the spawn cost once and every later batch is
  pure dispatch.

**The serialization boundary.**  Compiled plans hold ``itemgetter`` programs
and closures and are deliberately not picklable, so nothing plan-shaped ever
crosses a process boundary.  What does cross is a :class:`PlanSpec` — the
ordered relation tuple, the target, the root and the backend knobs — plus the
shard's database states; each worker rebuilds the prepared query from the
spec through :func:`repro.engine.analysis.prepared_from_spec` (hitting the
worker's own analysis LRU) and caches it in worker-local storage keyed by the
spec.  The first shard a worker sees for a spec pays analysis + compilation
once; every later shard is pure execution.  Worker interners are independent
by construction, which is sound because integer codes are a process-private
encoding detail: answers are decoded to plain values inside the worker before
they are shipped back (see the lifecycle notes in
:mod:`repro.relational.compiled`).

**Sharding.**  States are deduplicated (verbatim duplicates execute once),
then grouped by estimated cost — total tuple count, assigned largest-first to
the least-loaded shard (LPT scheduling) — so one heavy state cannot serialize
the batch behind it.  Shards are submitted heaviest-first and results are
reassembled in input order; per-shard :class:`ExecutionStats` are merged into
one :class:`ParallelStats` with per-worker attribution, shared by every run
of the batch, and every run reports ``backend="parallel"``.

Worker-count resolution honours the ``REPRO_PARALLEL_MAX_WORKERS``
environment variable (a hard cap, used by CI to keep the suite stable on
small runners); the start method defaults to ``fork`` on Linux (cheapest
spawn; see ``docs/api.md`` for the fork/spawn trade-offs) and ``spawn``
elsewhere, and can be forced with ``REPRO_PARALLEL_START_METHOD`` or the
constructor argument.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from heapq import heappop, heappush
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..relational.compiled import DEFAULT_MAX_INTERNED_VALUES, ExecutionStats
from ..relational.database import DatabaseState
from ..relational.yannakakis import YannakakisRun
from ..hypergraph.schema import RelationSchema

__all__ = [
    "ENV_MAX_WORKERS",
    "ENV_START_METHOD",
    "ParallelExecutor",
    "ParallelStats",
    "PlanSpec",
    "plan_shards",
    "resolve_start_method",
    "resolve_worker_count",
]

#: Environment variable holding a hard cap on resolved worker counts.
ENV_MAX_WORKERS = "REPRO_PARALLEL_MAX_WORKERS"

#: Environment variable forcing the multiprocessing start method.
ENV_START_METHOD = "REPRO_PARALLEL_START_METHOD"


def resolve_worker_count(workers: Optional[int]) -> int:
    """Resolve a requested worker count.

    ``None`` means one worker per available CPU; explicit requests are taken
    at face value (a pool wider than the machine still overlaps pickling with
    execution).  Either way the :data:`ENV_MAX_WORKERS` cap clamps the
    result, so operators and CI can bound fan-out without touching call
    sites.
    """
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    cap_text = os.environ.get(ENV_MAX_WORKERS)
    if cap_text:
        try:
            cap = int(cap_text)
        except ValueError:
            raise ValueError(
                f"{ENV_MAX_WORKERS} must be an integer, got {cap_text!r}"
            ) from None
        if cap < 1:
            # A cap of 0 or less is a misconfiguration; ignoring it would
            # silently unclamp the very pools it was set to bound.
            raise ValueError(f"{ENV_MAX_WORKERS} must be >= 1, got {cap}")
        workers = min(workers, cap)
    return workers


def resolve_start_method(method: Optional[str] = None) -> str:
    """Pick the multiprocessing start method for a pool.

    Explicit argument beats :data:`ENV_START_METHOD` beats the platform
    default: ``fork`` on Linux (by far the cheapest spawn, and the child
    inherits warm analysis caches), ``spawn`` everywhere else.  macOS lists
    ``fork`` as available but forking there is unsafe under Apple system
    libraries (CPython itself switched its default to ``spawn`` in 3.8), so
    only Linux opts into it by default.
    """
    if method is None:
        method = os.environ.get(ENV_START_METHOD) or None
    available = multiprocessing.get_all_start_methods()
    if method is None:
        if sys.platform.startswith("linux") and "fork" in available:
            return "fork"
        return "spawn"
    if method not in available:
        raise ValueError(
            f"start method {method!r} not available here (have: {', '.join(available)})"
        )
    return method


@dataclass(frozen=True)
class PlanSpec:
    """The picklable identity of a prepared query.

    Everything a worker needs to rebuild (and cache) the plan: the **ordered**
    relation tuple (plans are positional — order is part of the identity, see
    the analysis-cache notes in :mod:`repro.engine.analysis`), the projection
    target, the qual-tree root, and the backend knobs.
    ``max_interned_values`` is carried *resolved* (the literal cap, ``None``
    meaning unbounded); it **seeds** the plan a worker builds fresh for this
    spec.  A plan already resident in the worker — inherited over ``fork``,
    or shared through the analysis LRU with a spec differing only in cap —
    keeps its existing policy (one plan has one interner and therefore one
    rollover policy; see ``_plan_for_spec``).

    Specs are frozen, hashable and comparable, which makes them directly
    usable as worker-side cache keys; an unpickled spec compares equal to the
    original, so a worker that already compiled it never compiles again.
    """

    relations: Tuple[RelationSchema, ...]
    target: RelationSchema
    root: int = 0
    max_interned_values: Optional[int] = DEFAULT_MAX_INTERNED_VALUES

    @classmethod
    def of(cls, prepared) -> "PlanSpec":
        """The spec of a :class:`~repro.engine.prepared.PreparedQuery`
        (normally reached through ``prepared.plan_spec()``)."""
        plan = prepared._compiled
        cap = (
            plan.max_interned_values
            if plan is not None
            else DEFAULT_MAX_INTERNED_VALUES
        )
        return cls(
            relations=prepared.schema.relations,
            target=prepared.target,
            root=prepared.root,
            max_interned_values=cap,
        )

    def describe(self) -> str:
        """Human readable one-liner (for logs and CLI output)."""
        relations = ",".join(r.to_notation() for r in self.relations)
        return f"π_{self.target.to_notation() or '{}'}(⋈ {relations}) @R{self.root}"


# -- worker side ---------------------------------------------------------------

#: Worker-local plan cache: spec → PreparedQuery (with its compiled plan
#: forced).  Lives in the worker process's module globals; bounded so a
#: worker serving many distinct plans cannot grow without limit.  Within the
#: bound, each spec is compiled at most once per worker — the property the
#: call-count tests pin down.
_PLAN_CACHE_MAX = 128
_worker_plans: "OrderedDict[PlanSpec, Any]" = OrderedDict()


def _plan_for_spec(spec: PlanSpec) -> Tuple[Any, int]:
    """The worker's prepared query for ``spec`` plus a did-compile flag (0/1).

    On a miss the query is rebuilt through the analysis LRU
    (:func:`~repro.engine.analysis.prepared_from_spec`) and its compiled plan
    is forced immediately, so the compile cost lands on the first shard and
    later shards are pure execution.
    """
    prepared = _worker_plans.get(spec)
    if prepared is not None:
        _worker_plans.move_to_end(spec)
        return prepared, 0
    from .analysis import prepared_from_spec

    prepared = prepared_from_spec(spec)
    # `compiled_now` counts *actual* plan builds: a fork-started worker
    # inherits the parent's analysis LRU, so the rebuilt query may already
    # carry its compiled plan and the first shard pays nothing.
    compiled_now = 1 if prepared._compiled is None else 0
    # The spec's interner cap *seeds* a freshly built plan.  A plan already
    # resident in this process — inherited over fork, or shared through the
    # analysis LRU with a spec differing only in cap — keeps its existing
    # policy: a plan has one interner and therefore one rollover policy, and
    # silently overwriting it would re-enable (or un-bound) epochs behind
    # the back of whichever client configured it first.
    if compiled_now:
        prepared.compiled.max_interned_values = spec.max_interned_values
    _worker_plans[spec] = prepared
    if len(_worker_plans) > _PLAN_CACHE_MAX:
        _worker_plans.popitem(last=False)
    return prepared, compiled_now


def _execute_shard(
    spec: PlanSpec, states: Tuple[DatabaseState, ...]
) -> Tuple[int, int, List[YannakakisRun], ExecutionStats]:
    """Worker entry point: execute one shard against the cached plan.

    Returns ``(pid, plans_compiled, runs, shard_stats)``; runs are decoded
    (plain-value relations) before pickling back, so worker-local interner
    codes never leave the process.
    """
    prepared, compiled_now = _plan_for_spec(spec)
    stats = ExecutionStats()
    # The compiled plan handles every schema, the empty one included, and
    # its encode path is what keeps ``stats.states`` accounting truthful.
    plan = prepared.compiled
    runs = [plan.execute_state(state, stats=stats) for state in states]
    return os.getpid(), compiled_now, runs, stats


def _warmup() -> int:
    """No-op task used to spin a worker up ahead of real traffic."""
    return os.getpid()


# -- sharding ------------------------------------------------------------------


def plan_shards(costs: Sequence[int], shard_count: int) -> List[List[int]]:
    """Group item indices into at most ``shard_count`` cost-balanced shards.

    Longest-processing-time scheduling: items are taken largest-first and
    each goes to the currently lightest shard, so one heavy item ends up
    alone in its shard instead of serializing a whole chunk behind it.
    Deterministic (ties break on index), every index appears exactly once,
    empty shards are dropped, and within a shard indices stay in input order
    (reassembly relies on per-shard order).
    """
    if shard_count < 1:
        raise ValueError(f"shard_count must be >= 1, got {shard_count}")
    count = len(costs)
    shard_count = min(shard_count, count)
    if shard_count <= 1:
        return [list(range(count))] if count else []
    order = sorted(range(count), key=lambda index: (-costs[index], index))
    heap: List[Tuple[int, int]] = [(0, shard) for shard in range(shard_count)]
    shards: List[List[int]] = [[] for _ in range(shard_count)]
    for index in order:
        load, shard = heappop(heap)
        shards[shard].append(index)
        # +1 per item so zero-cost (empty) states still spread across shards.
        heappush(heap, (load + costs[index] + 1, shard))
    result = [sorted(shard) for shard in shards if shard]
    return result


# -- merged instrumentation ----------------------------------------------------


class ParallelStats(ExecutionStats):
    """Batch instrumentation merged across every shard of a parallel batch.

    Extends :class:`~repro.relational.compiled.ExecutionStats` (all counters
    summed over shards; lineage maps merged per (slot, key) — note that
    across *workers* the same (slot, key) index is built once per worker that
    touched the slot, since encodings are worker-local) with the parallel
    layer's own accounting: resolved ``workers``, shard count and sizes,
    total ``plan_compiles``, and ``per_worker`` attribution keyed by worker
    pid.
    """

    __slots__ = ("workers", "shard_sizes", "plan_compiles", "per_worker")

    def __init__(self, workers: int) -> None:
        super().__init__()
        self.workers = workers
        #: States per shard, in dispatch (heaviest-first) order.
        self.shard_sizes: List[int] = []
        self.plan_compiles = 0
        self.per_worker: Dict[int, Dict[str, int]] = {}

    @property
    def shard_count(self) -> int:
        """Number of shards the batch was split into."""
        return len(self.shard_sizes)

    def record_shard(
        self,
        pid: int,
        compiled_now: int,
        state_count: int,
        shard_stats: ExecutionStats,
    ) -> None:
        """Fold one shard's result metadata into the merged view."""
        self.absorb(shard_stats)
        self.plan_compiles += compiled_now
        self.shard_sizes.append(state_count)
        info = self.per_worker.setdefault(
            pid,
            {
                "shards": 0,
                "states": 0,
                "plan_compiles": 0,
                "encoded_slots": 0,
                "keyset_builds": 0,
                "bucket_builds": 0,
                "interner_resets": 0,
            },
        )
        info["shards"] += 1
        info["states"] += state_count
        info["plan_compiles"] += compiled_now
        info["encoded_slots"] += shard_stats.encoded_slots
        info["keyset_builds"] += shard_stats.total_keyset_builds()
        info["bucket_builds"] += shard_stats.total_bucket_builds()
        info["interner_resets"] += shard_stats.interner_resets

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"ParallelStats(workers={self.workers}, shards={self.shard_count}, "
            f"states={self.states}, plan_compiles={self.plan_compiles})"
        )


# -- the executor --------------------------------------------------------------


class ParallelExecutor:
    """A reusable process pool for sharded batched plan execution.

    Lifecycle: construct once, call :meth:`execute_many` any number of times
    (for any number of distinct prepared queries — workers cache plans per
    spec), close via the context-manager protocol or :meth:`close`.  The pool
    itself is created lazily on first use; :meth:`ensure_started` forces it
    eagerly (and round-trips one no-op per worker) so serving processes can
    pay the spawn cost at startup instead of on the first request — the
    benchmarks time exactly this distinction.

    One-shot use (``PreparedQuery.execute_many(..., backend="parallel")``
    without an executor) constructs, uses and closes a pool per call, which
    only amortizes on large batches; long-lived serving should hold one
    executor.
    """

    #: Default shards per worker.  Oversharding (rather than one shard per
    #: worker) lets the pool rebalance when cost estimates are off: a worker
    #: that finishes its light shards early picks up queued ones instead of
    #: idling behind a mis-estimated heavy shard.
    DEFAULT_SHARDS_PER_WORKER = 4

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        start_method: Optional[str] = None,
        shards_per_worker: Optional[int] = None,
    ) -> None:
        self._workers = resolve_worker_count(workers)
        self._start_method = resolve_start_method(start_method)
        shards = (
            self.DEFAULT_SHARDS_PER_WORKER
            if shards_per_worker is None
            else shards_per_worker
        )
        if shards < 1:
            raise ValueError(f"shards_per_worker must be >= 1, got {shards}")
        self._shards_per_worker = shards
        self._pool: Optional[ProcessPoolExecutor] = None
        self._closed = False

    # -- lifecycle -------------------------------------------------------------

    @property
    def workers(self) -> int:
        """The resolved worker count (request clamped by the env cap)."""
        return self._workers

    @property
    def start_method(self) -> str:
        """The multiprocessing start method the pool uses."""
        return self._start_method

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._closed:
            raise RuntimeError("ParallelExecutor is closed")
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self._workers,
                mp_context=multiprocessing.get_context(self._start_method),
            )
        return self._pool

    def ensure_started(self) -> int:
        """Create the pool and spin up every worker; returns the worker count.

        Round-trips one no-op task per worker so that later batches measure
        pure dispatch + execution, never process spawn.  (Workers that race
        to steal two no-ops leave a sibling cold — harmless, the pool tops
        itself up — but submitting ``workers`` tasks makes full spin-up the
        overwhelmingly common case.)
        """
        pool = self._ensure_pool()
        futures = [pool.submit(_warmup) for _ in range(self._workers)]
        for future in futures:
            future.result()
        return self._workers

    def close(self) -> None:
        """Shut the pool down (idempotent); the executor is unusable after."""
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        status = "closed" if self._closed else ("idle" if self._pool is None else "live")
        return (
            f"ParallelExecutor(workers={self._workers}, "
            f"start_method={self._start_method!r}, {status})"
        )

    # -- execution -------------------------------------------------------------

    def execute_many(
        self, prepared, states: Iterable[DatabaseState]
    ) -> List[YannakakisRun]:
        """Execute a prepared query against every state across the pool.

        Semantics match ``prepared.execute_many(states)`` exactly — same
        results, same per-run accounting — with results in input order;
        verbatim duplicate states are executed once and share a run.  Every
        returned run reports ``backend="parallel"`` and carries one shared
        :class:`ParallelStats` for the batch.
        """
        state_list = list(states)
        if not state_list:
            return []
        spec = prepared.plan_spec()

        # Verbatim-duplicate dedup (mirrors CompiledPlan.execute_batch):
        # duplicate requests ride along for free and never cross the wire
        # twice.
        unique_states: List[DatabaseState] = []
        unique_of: Dict[DatabaseState, int] = {}
        positions: List[int] = []
        for state in state_list:
            index = unique_of.get(state)
            if index is None:
                index = len(unique_states)
                unique_of[state] = index
                unique_states.append(state)
            positions.append(index)

        costs = [state.total_rows() for state in unique_states]
        shards = plan_shards(costs, self._workers * self._shards_per_worker)
        # Heaviest shard first: it starts executing while the rest are still
        # being pickled onto the queue.
        shards.sort(key=lambda indices: -sum(costs[index] for index in indices))

        pool = self._ensure_pool()
        futures = [
            pool.submit(
                _execute_shard,
                spec,
                tuple(unique_states[index] for index in indices),
            )
            for indices in shards
        ]

        stats = ParallelStats(self._workers)
        unique_runs: List[Optional[YannakakisRun]] = [None] * len(unique_states)
        for indices, future in zip(shards, futures):
            pid, compiled_now, runs, shard_stats = future.result()
            stats.record_shard(pid, compiled_now, len(indices), shard_stats)
            for index, run in zip(indices, runs):
                unique_runs[index] = run
        stats.deduped_states += len(state_list) - len(unique_states)

        retagged = [
            replace(run, backend="parallel", stats=stats) for run in unique_runs
        ]
        return [retagged[index] for index in positions]
