"""Deterministic fault injection for the parallel executor.

The supervision machinery of :mod:`repro.engine.parallel` — pool respawn,
per-shard timeout/retry, bisection, poison-state quarantine — is only
trustworthy if every recovery path can be exercised *deterministically* in
CI.  This module provides the injectable fault points, wired into the worker
entry point (``_execute_shard``) behind environment-controlled hooks, in the
spirit of the oracle methodology of PR 3/4: with any fault armed, recovered
batches must still be hypothesis-equal to ``backend="classic"``.

Fault points (all disabled unless their environment variable is set):

``REPRO_FAULT_CRASH=<times>``
    The first ``<times>`` shard executions (counted across *all* worker
    processes) kill their worker with ``os._exit(17)`` — a hard crash the
    pool observes as ``BrokenProcessPool``.  Worker-only: never fires in the
    main process.

``REPRO_FAULT_HANG=<times>[:<seconds>]``
    The first ``<times>`` shard executions sleep for ``<seconds>`` (default
    3600) before doing any work, simulating a hung worker.  Worker-only.

``REPRO_FAULT_TRANSIENT=<times>``
    The first ``<times>`` shard executions raise :class:`InjectedFault` — a
    clean exception that fails the shard without killing the worker.  With
    ``<times> <= max_retries`` the batch recovers by plain resubmission.

``REPRO_FAULT_POISON=worker|crash|always``
    Content-targeted: any state containing the sentinel value
    :data:`POISON_VALUE` in some tuple fails *every time it executes* —
    ``worker`` raises :class:`InjectedFault` in worker processes only (the
    in-process fallback succeeds), ``crash`` kills the worker via
    ``os._exit`` (again worker-only, so the fallback succeeds), ``always``
    raises everywhere (the fallback fails too, so the state is quarantined).

``REPRO_FAULT_TORN_WRITE=<times>[:kill]``
    The first ``<times>`` durable catalog writes
    (:mod:`repro.engine.catalog`) are *torn*: only a prefix of the record's
    bytes reaches the file, the fsync is skipped, and the partial file is
    renamed into place — the on-disk outcome of a process killed after the
    rename but before its pages were flushed.  With the ``:kill`` flavor the
    writing process additionally kills itself with ``SIGKILL`` immediately
    after the rename, which is a literal ``kill -9`` mid-write for
    crash-safety tests.  Fires in any process (catalog writers usually are
    the serving process).

``REPRO_FAULT_CORRUPT_RECORD=<times>``
    The first ``<times>`` durable catalog writes land intact-length but with
    one payload byte flipped *after* the checksum was computed, so the
    stored checksum cannot match — the read path must detect the mismatch
    and quarantine the record.

**Process-safe counting.**  Counted faults (crash/hang/transient) must fire
an exact total number of times across a pool of processes that share nothing
but the filesystem, so firing slots are claimed via atomic
``O_CREAT | O_EXCL`` file creation inside the directory named by
``REPRO_FAULT_DIR`` (arm it to a fresh directory per scenario; a stale
directory means already-claimed slots and therefore no firings).  Counted
faults without ``REPRO_FAULT_DIR`` are a configuration error and raise
immediately rather than silently never firing.

The hooks are exercised only when :func:`any_active` is true, so the healthy
path pays four environment lookups per shard and nothing per state.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from typing import Optional, Tuple

__all__ = [
    "ENV_CORRUPT_RECORD",
    "ENV_CRASH",
    "ENV_FAULT_DIR",
    "ENV_HANG",
    "ENV_POISON",
    "ENV_TORN_WRITE",
    "ENV_TRANSIENT",
    "POISON_VALUE",
    "InjectedFault",
    "any_active",
    "catalog_faults_active",
    "check_state",
    "corrupt_record",
    "on_shard_start",
    "state_is_poison",
    "torn_write_mode",
]

#: Directory for cross-process firing-slot accounting (counted faults).
ENV_FAULT_DIR = "REPRO_FAULT_DIR"

#: ``<times>`` — kill the worker with ``os._exit(17)`` at shard start.
ENV_CRASH = "REPRO_FAULT_CRASH"

#: ``<times>[:<seconds>]`` — sleep at shard start (default 3600 s).
ENV_HANG = "REPRO_FAULT_HANG"

#: ``<times>`` — raise :class:`InjectedFault` at shard start.
ENV_TRANSIENT = "REPRO_FAULT_TRANSIENT"

#: ``worker`` | ``crash`` | ``always`` — states containing
#: :data:`POISON_VALUE` fail deterministically per the mode.
ENV_POISON = "REPRO_FAULT_POISON"

#: ``<times>[:kill]`` — tear the next catalog write (``kill``: then SIGKILL).
ENV_TORN_WRITE = "REPRO_FAULT_TORN_WRITE"

#: ``<times>`` — flip one payload byte of the next catalog write.
ENV_CORRUPT_RECORD = "REPRO_FAULT_CORRUPT_RECORD"

#: Sentinel value marking a state as poison for :data:`ENV_POISON`.
POISON_VALUE = "__repro-poison__"

#: Exit status used by the injected worker crash (recognizable in waitpid
#: post-mortems; any non-zero status breaks the pool identically).
CRASH_EXIT_STATUS = 17

_POISON_MODES = ("worker", "crash", "always")

_ENV_VARS = (
    ENV_CRASH,
    ENV_HANG,
    ENV_TRANSIENT,
    ENV_POISON,
    ENV_TORN_WRITE,
    ENV_CORRUPT_RECORD,
)

_CATALOG_ENV_VARS = (ENV_TORN_WRITE, ENV_CORRUPT_RECORD)

_TORN_FLAVORS = ("torn", "kill")


class InjectedFault(RuntimeError):
    """An exception raised by an armed fault point.

    Deliberately *not* a :class:`~repro.exceptions.ReproError`: it stands in
    for an arbitrary bug or environmental failure inside a worker, which is
    exactly what the supervision layer must survive without special-casing.
    """


def any_active() -> bool:
    """True when at least one fault point is armed in the environment."""
    environ = os.environ
    return any(environ.get(name) for name in _ENV_VARS)


def _in_worker() -> bool:
    """True inside a pool worker process (never in the serving process)."""
    return multiprocessing.current_process().name != "MainProcess"


def _parse_times(name: str, text: str) -> int:
    try:
        times = int(text)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {text!r}") from None
    if times < 0:
        raise ValueError(f"{name} must be >= 0, got {times}")
    return times


def _parse_hang(text: str) -> Tuple[int, float]:
    times_text, _, seconds_text = text.partition(":")
    times = _parse_times(ENV_HANG, times_text)
    if not seconds_text:
        return times, 3600.0
    try:
        seconds = float(seconds_text)
    except ValueError:
        raise ValueError(
            f"{ENV_HANG} seconds must be a number, got {seconds_text!r}"
        ) from None
    return times, seconds


def _claim_slot(kind: str, times: int) -> bool:
    """Atomically claim one of ``times`` firing slots for ``kind``.

    Returns True exactly ``times`` times across every process sharing the
    fault directory; slot files persist, so re-running a scenario needs a
    fresh ``REPRO_FAULT_DIR``.
    """
    if times <= 0:
        return False
    directory = os.environ.get(ENV_FAULT_DIR)
    if not directory:
        raise ValueError(
            f"{ENV_FAULT_DIR} must name a shared directory when counted "
            f"faults ({kind}) are armed"
        )
    for slot in range(times):
        path = os.path.join(directory, f"{kind}.{slot}")
        try:
            descriptor = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue
        os.close(descriptor)
        return True
    return False


def on_shard_start() -> None:
    """Shard-level fault point, called by the worker before executing.

    Order is crash, hang, transient — a spec arming several kinds fires the
    most destructive one first.
    """
    environ = os.environ
    crash = environ.get(ENV_CRASH)
    if crash and _in_worker() and _claim_slot("crash", _parse_times(ENV_CRASH, crash)):
        os._exit(CRASH_EXIT_STATUS)
    hang = environ.get(ENV_HANG)
    if hang:
        times, seconds = _parse_hang(hang)
        if _in_worker() and _claim_slot("hang", times):
            time.sleep(seconds)
    transient = environ.get(ENV_TRANSIENT)
    if transient and _claim_slot("transient", _parse_times(ENV_TRANSIENT, transient)):
        raise InjectedFault(f"injected transient failure ({ENV_TRANSIENT})")


def poison_mode() -> Optional[str]:
    """The armed poison mode, or ``None``; rejects unknown modes loudly."""
    mode = os.environ.get(ENV_POISON)
    if not mode:
        return None
    if mode not in _POISON_MODES:
        raise ValueError(
            f"{ENV_POISON} must be one of {', '.join(_POISON_MODES)}, got {mode!r}"
        )
    return mode


def state_is_poison(state) -> bool:
    """True when some tuple of ``state`` contains :data:`POISON_VALUE`."""
    return any(
        POISON_VALUE in row for relation in state.relations for row in relation.rows
    )


def check_state(state) -> None:
    """State-level fault point: fail ``state`` if it is marked poison.

    Called by the worker for every state of a shard *and* by the executor's
    in-process fallback, so the ``always`` mode can prove the quarantine
    path while ``worker``/``crash`` prove graceful degradation onto the
    in-process backend.
    """
    mode = poison_mode()
    if mode is None:
        return
    in_worker = _in_worker()
    if mode in ("worker", "crash") and not in_worker:
        return
    if not state_is_poison(state):
        return
    if mode == "crash":
        os._exit(CRASH_EXIT_STATUS)
    raise InjectedFault(f"injected poison-state failure ({ENV_POISON}={mode})")


# -- catalog fault points (PR 10) -----------------------------------------------


def catalog_faults_active() -> bool:
    """True when a catalog fault point (torn write / corrupt record) is armed.

    The catalog's durable-write path checks this once per write, so the
    healthy path pays two environment lookups and nothing else.
    """
    environ = os.environ
    return any(environ.get(name) for name in _CATALOG_ENV_VARS)


def torn_write_mode() -> Optional[str]:
    """Claim a torn-write firing slot; ``None``, ``"torn"`` or ``"kill"``.

    ``"torn"``: the writer must write only a prefix of the record, skip the
    fsync and rename the partial file into place — then carry on as if the
    write had succeeded (the caller cannot know its pages were lost).
    ``"kill"``: same torn rename, after which the writer calls
    :func:`kill_self` — a real ``SIGKILL`` mid-write for crash tests.
    """
    text = os.environ.get(ENV_TORN_WRITE)
    if not text:
        return None
    times_text, _, flavor = text.partition(":")
    times = _parse_times(ENV_TORN_WRITE, times_text)
    flavor = flavor or "torn"
    if flavor not in _TORN_FLAVORS:
        raise ValueError(
            f"{ENV_TORN_WRITE} flavor must be one of "
            f"{', '.join(_TORN_FLAVORS)}, got {flavor!r}"
        )
    if _claim_slot("torn-write", times):
        return flavor
    return None


def corrupt_record() -> bool:
    """Claim a corrupt-record firing slot.

    True means the writer must flip one payload byte *after* computing the
    record checksum, producing an intact-length record whose checksum cannot
    verify.
    """
    text = os.environ.get(ENV_CORRUPT_RECORD)
    if not text:
        return False
    return _claim_slot("corrupt-record", _parse_times(ENV_CORRUPT_RECORD, text))


def kill_self() -> None:  # pragma: no cover - the process dies here
    """Kill the current process with ``SIGKILL`` (no cleanup, no flush)."""
    os.kill(os.getpid(), signal.SIGKILL)
