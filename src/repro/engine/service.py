"""Long-lived streaming query service with adaptive backend routing.

:class:`QueryService` is the serving-layer face of the plan-once economy: a
thread-safe, long-lived object that accepts batches of database states
against prepared queries and decides *per batch* how to execute them.

Three ideas compose here:

* **Adaptive routing.**  Every ``backend="auto"`` batch is routed by a
  :class:`~repro.engine.routing.RoutingPolicy` cost model: thin workloads
  (repeat-heavy pools, small batches, cheap plans) stay on the in-process
  compiled kernel, heavy batches go to the supervised parallel pool.  The
  model calibrates itself from a tiny per-plan timing probe cached on the
  plan's :class:`~repro.engine.analysis.AnalyzedSchema`, so the probe cost is
  paid once per plan — not per batch, not per service.  ``backend=`` remains
  an explicit override that bypasses the model.

* **Bounded admission.**  ``max_inflight_states`` / ``max_inflight_bytes``
  cap what the service will hold in flight.  ``submit(..., wait=True)``
  blocks (backpressure) until capacity frees; ``wait=False`` or an exceeded
  ``timeout`` raises a structured
  :class:`~repro.exceptions.AdmissionError` carrying the sizes involved so
  callers can shed load intelligently.

* **Worker affinity.**  Parallel batches run on *spec-pinned* executors: one
  :class:`~repro.engine.parallel.ParallelExecutor` per plan spec (bounded
  LRU of ``max_pinned_pools``), so a (worker, spec) pair keeps its interner
  epoch and compiled-plan cache warm across batches.  Pinned pools inherit
  the service's ``transport`` — with ``transport="shm"`` state payloads
  cross the process boundary through ``multiprocessing.shared_memory``
  segments instead of pickle.

:meth:`QueryService.stream` is the streaming API: it splits a batch into
cost-balanced shards and yields :class:`StreamItem` results *as each shard
completes* — no batch barrier — releasing admission capacity shard by
shard.  Under ``failure_policy="degrade"`` quarantined states surface as
typed error items (``item.error`` carries the terminal exception the
supervision ladder recorded) instead of poisoning the whole stream.

Cyclic plans (:class:`~repro.engine.cyclic.CyclicPreparedQuery`) serve
through every one of these paths unchanged: the service only touches
``plan_spec()`` (whose ``cyclic`` flag keys distinct pinned pools) and the
``execute_many`` knob matrix, both of which the cyclic plan mirrors.
"""

from __future__ import annotations

import threading
import time
import weakref
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor
from concurrent.futures import wait as wait_futures
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..exceptions import AdmissionError, ExecutionError
from ..relational.database import DatabaseState
from ..relational.yannakakis import YannakakisRun
from .catalog import resolve_catalog
from .parallel import (
    ParallelExecutor,
    execute_in_process,
    plan_shards,
    resolve_failure_policy,
    resolve_transport,
    resolve_worker_count,
)
from .prepared import resolve_backend
from .routing import RoutingDecision, RoutingPolicy, override_decision

__all__ = [
    "DEFAULT_MAX_PINNED_POOLS",
    "DEFAULT_STREAM_SHARDS_PER_WORKER",
    "QueryService",
    "ServiceHandle",
    "ServiceStats",
    "ServiceStream",
    "StreamItem",
    "estimate_state_bytes",
]

#: Spec-pinned parallel pools kept alive at once (LRU beyond this).
DEFAULT_MAX_PINNED_POOLS = 4

#: Streaming granularity: target shards per pool worker.  More shards mean
#: earlier first results and finer admission release; fewer amortize batch
#: overhead better.
DEFAULT_STREAM_SHARDS_PER_WORKER = 2

#: Dispatcher threads: enough to overlap a few batches and stream shards
#: without unbounded thread growth (threads block, the GIL is released in
#: the pool-wait path, so width is about overlap, not CPU).
_DISPATCH_THREADS = 8

#: Fixed per-tuple estimate used by admission byte accounting: eight bytes
#: per value (the int64 shm encoding) plus per-row container overhead.
_BYTES_PER_VALUE = 8
_BYTES_PER_ROW_OVERHEAD = 16
_BYTES_PER_STATE_OVERHEAD = 128


#: Per-identity memo for :func:`estimate_state_bytes`: ``id(state) →
#: (weakref, bytes)``.  States are immutable, so the estimate is a function
#: of identity; repeated submissions of the same object (the common serving
#: pattern the admission gate sees) must not re-walk every relation.  The
#: weakref both guards against id reuse (a dead state's id can be recycled —
#: the ``ref() is state`` check rejects a stale hit) and evicts the entry
#: the moment the state is collected, so the memo cannot grow past the set
#: of live states.
_STATE_BYTES_MEMO: Dict[int, Tuple["weakref.ref", int]] = {}


def estimate_state_bytes(state: DatabaseState) -> int:
    """Deterministic payload estimate for admission accounting.

    Counts eight bytes per value plus small per-row/per-state overheads —
    the same order as the shm wire encoding for pure-int states, a safe
    under-estimate for pickled mixed-type rows.  Admission is a load-shed
    mechanism, not an allocator, so a consistent estimate beats an exact
    (and expensive) serialization pass.  Estimates are memoized per state
    *identity* (states are immutable), so resubmitting the same object is a
    dictionary hit instead of a walk over every relation.
    """
    key = id(state)
    memo = _STATE_BYTES_MEMO.get(key)
    if memo is not None and memo[0]() is state:
        return memo[1]
    total = _BYTES_PER_STATE_OVERHEAD
    for relation in state.relations:
        width = len(relation.schema)
        total += len(relation.rows) * (
            width * _BYTES_PER_VALUE + _BYTES_PER_ROW_OVERHEAD
        )
    try:
        ref = weakref.ref(
            state, lambda _ref, _key=key: _STATE_BYTES_MEMO.pop(_key, None)
        )
    except TypeError:
        # Not weak-referenceable (e.g. a test double); estimate uncached.
        return total
    _STATE_BYTES_MEMO[key] = (ref, total)
    return total


@dataclass(frozen=True)
class StreamItem:
    """One streamed result: the run (or typed error) for one input state.

    ``index`` is the position in the submitted batch.  Exactly one of
    ``run`` / ``error`` is set: ``error`` carries the terminal exception the
    supervision ladder recorded for a quarantined state (only possible under
    ``failure_policy="degrade"``; under ``"raise"`` the stream raises
    instead).
    """

    index: int
    run: Optional[YannakakisRun] = None
    error: Optional[BaseException] = None

    @property
    def ok(self) -> bool:
        """True when the item carries a run."""
        return self.error is None


class ServiceStats:
    """Service-lifetime counters (all mutated under the service lock)."""

    __slots__ = (
        "submitted_batches",
        "submitted_states",
        "streamed_batches",
        "streamed_items",
        "admission_waits",
        "admission_rejections",
        "pool_evictions",
        "backends",
        "rules",
        "catalog",
    )

    def __init__(self) -> None:
        self.submitted_batches = 0
        self.submitted_states = 0
        self.streamed_batches = 0
        self.streamed_items = 0
        #: Times an admission had to block for capacity.
        self.admission_waits = 0
        #: Structured AdmissionErrors raised (wait=False or timeout).
        self.admission_rejections = 0
        self.pool_evictions = 0
        #: Batches per executed backend ("compiled"/"parallel"/"classic").
        self.backends: Dict[str, int] = {}
        #: Batches per routing rule ("parallel-wins", "small-batch", ...).
        self.rules: Dict[str, int] = {}
        #: The service's :class:`~repro.engine.catalog.CatalogStats`, or
        #: ``None`` when no plan catalog is attached.  A live reference, not
        #: a copy: the same counters the catalog mutates (under its own
        #: lock), so hit/miss/quarantine/degraded are always current.
        self.catalog = None

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly snapshot."""
        return {
            "submitted_batches": self.submitted_batches,
            "submitted_states": self.submitted_states,
            "streamed_batches": self.streamed_batches,
            "streamed_items": self.streamed_items,
            "admission_waits": self.admission_waits,
            "admission_rejections": self.admission_rejections,
            "pool_evictions": self.pool_evictions,
            "backends": dict(self.backends),
            "rules": dict(self.rules),
            "catalog": None if self.catalog is None else self.catalog.as_dict(),
        }

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"ServiceStats(batches={self.submitted_batches}, "
            f"states={self.submitted_states}, backends={self.backends})"
        )


class ServiceHandle:
    """Future-style handle for one submitted batch.

    ``decision`` (available immediately — routing happens at submit time)
    records which backend the batch took and why; ``result()`` blocks for
    the runs, in input order, with ``None`` at quarantined positions under
    ``failure_policy="degrade"``.
    """

    __slots__ = ("decision", "transport", "_future")

    def __init__(
        self, decision: RoutingDecision, transport: str, future: Future
    ) -> None:
        self.decision = decision
        #: Transport a parallel route would use ("none" for in-process).
        self.transport = transport
        self._future = future

    def result(
        self, timeout: Optional[float] = None
    ) -> List[Optional[YannakakisRun]]:
        """The batch's runs in input order (blocks up to ``timeout``)."""
        return self._future.result(timeout)

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        """The batch's exception, if it failed (blocks up to ``timeout``)."""
        return self._future.exception(timeout)

    def done(self) -> bool:
        """True once the batch has finished (successfully or not)."""
        return self._future.done()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        status = "done" if self._future.done() else "pending"
        return (
            f"ServiceHandle(backend={self.decision.backend!r}, "
            f"rule={self.decision.rule!r}, {status})"
        )


class ServiceStream:
    """Iterable of :class:`StreamItem` plus the routing decision that shaped it.

    Items arrive in *shard completion order*, not input order — that is the
    point of streaming — and each carries its input ``index`` so callers can
    reassemble.  Iterating drives execution; abandoning the iterator cancels
    undispatched shards and releases their admission.
    """

    __slots__ = ("decision", "transport", "shard_count", "_iterator")

    def __init__(
        self,
        decision: RoutingDecision,
        transport: str,
        shard_count: int,
        iterator: Iterator[StreamItem],
    ) -> None:
        self.decision = decision
        self.transport = transport
        #: Number of shards the batch was split into for streaming.
        self.shard_count = shard_count
        self._iterator = iterator

    def __iter__(self) -> Iterator[StreamItem]:
        return self._iterator


@dataclass
class _PinnedPool:
    """A spec-pinned executor plus the lock that serializes batches on it
    (:class:`~repro.engine.parallel.ParallelExecutor` is not thread-safe)."""

    executor: ParallelExecutor
    lock: threading.Lock = field(default_factory=threading.Lock)


class QueryService:
    """Thread-safe, long-lived serving front end over the execution backends.

    One service owns: a routing policy (shared cost model), an admission
    gate (bounded in-flight states/bytes with blocking backpressure), a
    small dispatcher thread pool (asynchronous ``submit``), and a bounded
    LRU of spec-pinned :class:`~repro.engine.parallel.ParallelExecutor`
    pools.  All public methods are safe to call from any thread.

    Parameters mirror the executor's where they overlap; ``workers``,
    ``shard_timeout``, ``max_retries``, ``failure_policy`` and ``transport``
    become the defaults for every pinned pool.  ``routing=None`` installs a
    default :class:`~repro.engine.routing.RoutingPolicy`;
    ``max_inflight_states`` / ``max_inflight_bytes`` of ``None`` disable the
    respective admission limit.
    """

    def __init__(
        self,
        *,
        workers: Optional[int] = None,
        transport: Optional[str] = None,
        routing: Optional[RoutingPolicy] = None,
        max_inflight_states: Optional[int] = None,
        max_inflight_bytes: Optional[int] = None,
        max_pinned_pools: int = DEFAULT_MAX_PINNED_POOLS,
        shard_timeout: Optional[float] = None,
        max_retries: Optional[int] = None,
        failure_policy: str = "raise",
        stream_shards_per_worker: int = DEFAULT_STREAM_SHARDS_PER_WORKER,
        catalog=None,
    ) -> None:
        if max_inflight_states is not None and max_inflight_states < 1:
            raise ValueError(
                f"max_inflight_states must be >= 1, got {max_inflight_states}"
            )
        if max_inflight_bytes is not None and max_inflight_bytes < 1:
            raise ValueError(
                f"max_inflight_bytes must be >= 1, got {max_inflight_bytes}"
            )
        if max_pinned_pools < 1:
            raise ValueError(f"max_pinned_pools must be >= 1, got {max_pinned_pools}")
        if stream_shards_per_worker < 1:
            raise ValueError(
                f"stream_shards_per_worker must be >= 1, "
                f"got {stream_shards_per_worker}"
            )
        self._workers = resolve_worker_count(workers)
        self._transport = resolve_transport(transport)
        self._routing = routing if routing is not None else RoutingPolicy()
        self._failure_policy = resolve_failure_policy(failure_policy)
        self._shard_timeout = shard_timeout
        self._max_retries = max_retries
        self._max_inflight_states = max_inflight_states
        self._max_inflight_bytes = max_inflight_bytes
        self._max_pinned_pools = max_pinned_pools
        self._stream_shards = stream_shards_per_worker
        #: The persistent plan catalog this service reports on (an instance,
        #: a directory path, or ``None`` for the ``REPRO_CATALOG_DIR``
        #: default).  The serving path itself never blocks on the catalog —
        #: workers consult it through ``prepared_from_spec`` — but attaching
        #: it here threads its hit/miss/quarantine/degraded counters through
        #: :attr:`ServiceStats.catalog` so one stats snapshot tells the whole
        #: serving story.
        self._catalog = resolve_catalog(catalog)
        self.stats = ServiceStats()
        if self._catalog is not None:
            self.stats.catalog = self._catalog.stats

        self._lock = threading.Lock()
        self._admission = threading.Condition(self._lock)
        self._inflight_states = 0
        self._inflight_bytes = 0
        self._closed = False
        #: True only inside close(drain=True), between refusing new
        #: submissions and the dispatcher running dry: in-flight batches may
        #: still acquire pinned pools during this window.
        self._draining = False
        self._pools: "OrderedDict[object, _PinnedPool]" = OrderedDict()
        #: Serializes in-process (compiled/classic) batches: the compiled
        #: kernel's caches are guarded for encoding but batch execution is
        #: not designed for concurrent mutation, and in-process routes are
        #: thin by construction, so serializing them costs little.
        self._in_process_lock = threading.Lock()
        self._dispatcher = ThreadPoolExecutor(
            max_workers=_DISPATCH_THREADS, thread_name_prefix="repro-service"
        )

    # -- lifecycle -------------------------------------------------------------

    @property
    def healthy(self) -> bool:
        """True while the service is open and every pinned pool is usable."""
        with self._lock:
            if self._closed:
                return False
            pools = list(self._pools.values())
        return all(pool.executor.healthy for pool in pools)

    @property
    def catalog(self):
        """The attached :class:`~repro.engine.catalog.PlanCatalog`, or ``None``."""
        return self._catalog

    def close(self, *, drain: bool = True) -> None:
        """Shut the service down (idempotent).

        ``drain=True`` (the default) finishes every in-flight batch and
        stream shard before closing the pinned pools, so handles returned
        earlier still resolve and already-dispatched stream shards still
        yield — the graceful shutdown a serving process wants on SIGTERM.
        ``drain=False`` cancels everything not yet executing and tears the
        pools down immediately; in-flight handles may complete or may fail
        with a pool-shutdown error.  Either way, submissions after ``close``
        raise the typed closed-service error.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._draining = drain
            # Unblock admission waiters so they observe the closure.
            self._admission.notify_all()
        if drain:
            # In-flight work may still acquire (even create) pinned pools
            # while the dispatcher drains — _pinned_pool admits them via the
            # draining flag — so the pools are collected and closed only
            # after the last dispatched batch has finished.
            self._dispatcher.shutdown(wait=True)
        else:
            self._dispatcher.shutdown(wait=False, cancel_futures=True)
        with self._lock:
            self._draining = False
            pools = list(self._pools.values())
            self._pools.clear()
        for pool in pools:
            with pool.lock:
                pool.executor.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        with self._lock:
            pools = len(self._pools)
            status = "closed" if self._closed else "open"
        return (
            f"QueryService(workers={self._workers}, "
            f"transport={self._transport!r}, pinned_pools={pools}, {status})"
        )

    # -- admission -------------------------------------------------------------

    def _admit(
        self,
        states: int,
        nbytes: int,
        *,
        wait: bool,
        timeout: Optional[float],
    ) -> None:
        """Reserve capacity for a submission, blocking if asked to.

        Raises :class:`~repro.exceptions.AdmissionError` when the submission
        can *never* fit (it alone exceeds a limit), when ``wait=False`` and
        capacity is unavailable, or when the wait exceeds ``timeout``.
        """
        with self._admission:
            if self._closed:
                raise RuntimeError("QueryService is closed")
            over_states = (
                self._max_inflight_states is not None
                and states > self._max_inflight_states
            )
            over_bytes = (
                self._max_inflight_bytes is not None
                and nbytes > self._max_inflight_bytes
            )
            if over_states or over_bytes:
                self.stats.admission_rejections += 1
                raise AdmissionError(
                    f"submission of {states} state(s) (~{nbytes} bytes) can "
                    f"never be admitted: it alone exceeds "
                    f"max_inflight_states={self._max_inflight_states} / "
                    f"max_inflight_bytes={self._max_inflight_bytes}",
                    requested_states=states,
                    requested_bytes=nbytes,
                    inflight_states=self._inflight_states,
                    inflight_bytes=self._inflight_bytes,
                )
            deadline = None if timeout is None else time.monotonic() + timeout

            def fits() -> bool:
                if (
                    self._max_inflight_states is not None
                    and self._inflight_states + states > self._max_inflight_states
                ):
                    return False
                if (
                    self._max_inflight_bytes is not None
                    and self._inflight_bytes + nbytes > self._max_inflight_bytes
                ):
                    return False
                return True

            while not fits():
                if not wait:
                    self.stats.admission_rejections += 1
                    raise AdmissionError(
                        f"admission refused: {states} state(s) "
                        f"(~{nbytes} bytes) would exceed the in-flight "
                        f"limits and wait=False",
                        requested_states=states,
                        requested_bytes=nbytes,
                        inflight_states=self._inflight_states,
                        inflight_bytes=self._inflight_bytes,
                    )
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        self.stats.admission_rejections += 1
                        raise AdmissionError(
                            f"admission wait timed out after {timeout:g}s "
                            f"for {states} state(s) (~{nbytes} bytes)",
                            requested_states=states,
                            requested_bytes=nbytes,
                            inflight_states=self._inflight_states,
                            inflight_bytes=self._inflight_bytes,
                        )
                self.stats.admission_waits += 1
                self._admission.wait(remaining)
                if self._closed:
                    raise RuntimeError("QueryService is closed")
            self._inflight_states += states
            self._inflight_bytes += nbytes

    def _release(self, states: int, nbytes: int) -> None:
        with self._admission:
            self._inflight_states -= states
            self._inflight_bytes -= nbytes
            self._admission.notify_all()

    @property
    def inflight(self) -> Tuple[int, int]:
        """Currently admitted ``(states, bytes)``."""
        with self._admission:
            return self._inflight_states, self._inflight_bytes

    # -- routing ---------------------------------------------------------------

    def _decide(
        self, prepared, states: Sequence[DatabaseState], backend: str
    ) -> RoutingDecision:
        if backend != "auto":
            resolved = resolve_backend(backend)
            if backend == "parallel" and self._routing.is_degenerate(states):
                # Even an explicit parallel request cannot shard an empty or
                # single-unique batch; run it in-process, tagged parallel.
                return RoutingDecision(
                    backend="parallel",
                    rule="override-degenerate",
                    reason=(
                        "backend='parallel' requested but the batch is "
                        "degenerate; serving in-process"
                    ),
                    states=len(states),
                    unique_states=0,
                    unique_rows=0,
                )
            return override_decision(resolved, states)
        with self._lock:
            pool_live = any(
                pool.executor.healthy for pool in self._pools.values()
            )
        return self._routing.decide(
            prepared, states, workers=self._workers, pool_live=pool_live
        )

    def _record_decision(self, decision: RoutingDecision, states: int) -> None:
        with self._lock:
            self.stats.submitted_batches += 1
            self.stats.submitted_states += states
            self.stats.backends[decision.backend] = (
                self.stats.backends.get(decision.backend, 0) + 1
            )
            self.stats.rules[decision.rule] = (
                self.stats.rules.get(decision.rule, 0) + 1
            )

    # -- pinned pools ----------------------------------------------------------

    def _pinned_pool(self, prepared) -> _PinnedPool:
        """The executor pinned to this plan spec (created/LRU-bumped).

        Pinning is the affinity mechanism: a spec always lands on the same
        pool, so that pool's workers keep their interner epoch and compiled
        plan for the spec warm across batches — exactly what makes the shm
        transport's re-adoption fast path pay off.
        """
        spec = prepared.plan_spec()
        evicted: List[_PinnedPool] = []
        with self._lock:
            if self._closed and not self._draining:
                raise RuntimeError("QueryService is closed")
            pool = self._pools.get(spec)
            if pool is None:
                pool = _PinnedPool(
                    ParallelExecutor(
                        workers=self._workers,
                        transport=self._transport,
                        shard_timeout=self._shard_timeout,
                        max_retries=self._max_retries,
                        failure_policy=self._failure_policy,
                    )
                )
                self._pools[spec] = pool
                while len(self._pools) > self._max_pinned_pools:
                    _, old = self._pools.popitem(last=False)
                    evicted.append(old)
                    self.stats.pool_evictions += 1
            else:
                self._pools.move_to_end(spec)
        for old in evicted:
            # Outside the service lock: closing waits for any batch running
            # on the evicted pool (its lock serializes batches).
            with old.lock:
                old.executor.close()
        return pool

    def pinned_pool_count(self) -> int:
        """Number of spec-pinned pools currently alive."""
        with self._lock:
            return len(self._pools)

    # -- execution -------------------------------------------------------------

    def _execute_batch(
        self,
        prepared,
        states: List[DatabaseState],
        decision: RoutingDecision,
        overrides: Dict[str, object],
        causes_out: Optional[Dict[int, BaseException]] = None,
    ) -> List[Optional[YannakakisRun]]:
        backend = decision.backend
        if backend == "parallel":
            if decision.rule == "override-degenerate":
                with self._in_process_lock:
                    return execute_in_process(prepared, states)

            def run_on(pool: _PinnedPool) -> List[Optional[YannakakisRun]]:
                # Called under pool.lock, which serializes batches — reading
                # last_batch_stats right after the call is race-free.  The
                # read matters when a degraded batch quarantined *every*
                # state: the returned runs are all None, so the stats (and
                # their quarantine causes) are reachable nowhere else.
                runs = pool.executor.execute_many(prepared, states, **overrides)
                if causes_out is not None:
                    stats = pool.executor.last_batch_stats
                    if stats is not None and stats.quarantine_causes:
                        causes_out.update(stats.quarantine_causes)
                return runs

            pool = self._pinned_pool(prepared)
            with pool.lock:
                if pool.executor.healthy:
                    return run_on(pool)
            # Rare race: the pool was LRU-evicted (and closed) between the
            # lookup and the lock.  One fresh lookup settles it — the new
            # pool cannot be evicted while we hold its lock.
            pool = self._pinned_pool(prepared)
            with pool.lock:
                return run_on(pool)
        with self._in_process_lock:
            return prepared.execute_many(states, backend=backend)

    def submit(
        self,
        prepared,
        states: Iterable[DatabaseState],
        *,
        backend: str = "auto",
        transport: Optional[str] = None,
        failure_policy: Optional[str] = None,
        wait: bool = True,
        timeout: Optional[float] = None,
    ) -> ServiceHandle:
        """Submit a batch asynchronously; returns a Future-style handle.

        Routing happens here, synchronously — ``handle.decision`` is
        available immediately — then the batch is admitted (blocking for
        capacity if ``wait``, else raising
        :class:`~repro.exceptions.AdmissionError`) and dispatched.
        ``handle.result()`` yields the runs in input order.  ``backend``,
        ``transport`` and ``failure_policy`` override the service defaults
        for this batch only.
        """
        state_list = list(states)
        decision = self._decide(prepared, state_list, backend)
        self._record_decision(decision, len(state_list))
        nbytes = sum(estimate_state_bytes(state) for state in state_list)
        overrides: Dict[str, object] = {
            "transport": resolve_transport(transport)
            if transport is not None
            else self._transport,
        }
        if failure_policy is not None:
            overrides["failure_policy"] = resolve_failure_policy(failure_policy)
        self._admit(len(state_list), nbytes, wait=wait, timeout=timeout)
        try:
            future = self._dispatcher.submit(
                self._execute_batch, prepared, state_list, decision, overrides
            )
        except BaseException:
            self._release(len(state_list), nbytes)
            raise
        future.add_done_callback(
            lambda _f, n=len(state_list), b=nbytes: self._release(n, b)
        )
        effective_transport = (
            overrides["transport"] if decision.backend == "parallel" else "none"
        )
        return ServiceHandle(decision, str(effective_transport), future)

    def execute_many(
        self,
        prepared,
        states: Iterable[DatabaseState],
        *,
        backend: str = "auto",
        transport: Optional[str] = None,
        failure_policy: Optional[str] = None,
        wait: bool = True,
        timeout: Optional[float] = None,
    ) -> List[Optional[YannakakisRun]]:
        """Synchronous convenience: ``submit(...).result()``."""
        return self.submit(
            prepared,
            states,
            backend=backend,
            transport=transport,
            failure_policy=failure_policy,
            wait=wait,
            timeout=timeout,
        ).result()

    # -- streaming -------------------------------------------------------------

    def stream(
        self,
        prepared,
        states: Iterable[DatabaseState],
        *,
        backend: str = "auto",
        transport: Optional[str] = None,
        failure_policy: Optional[str] = None,
        wait: bool = True,
        timeout: Optional[float] = None,
    ) -> ServiceStream:
        """Execute a batch, yielding results as shards complete.

        The batch is split into cost-balanced shards
        (``stream_shards_per_worker × workers``, capped so every shard fits
        the admission limits); each shard is admitted, dispatched, and its
        :class:`StreamItem` results yielded the moment it finishes — the
        first results arrive while later shards are still queued or
        executing.  Admission capacity is released shard by shard, so a
        streaming consumer exerts backpressure simply by iterating slowly.

        Routing is decided once for the whole batch (a shard-sized slice
        would systematically under-estimate the work).  Under
        ``failure_policy="degrade"`` quarantined states arrive as items with
        ``error`` set; under ``"raise"`` the iterator propagates the shard's
        exception.
        """
        state_list = list(states)
        decision = self._decide(prepared, state_list, backend)
        with self._lock:
            self.stats.streamed_batches += 1
        self._record_decision(decision, len(state_list))
        policy = (
            resolve_failure_policy(failure_policy)
            if failure_policy is not None
            else self._failure_policy
        )
        overrides: Dict[str, object] = {
            "transport": resolve_transport(transport)
            if transport is not None
            else self._transport,
            "failure_policy": policy,
        }

        # -- shard the *input positions* (duplicates dedup inside each
        # shard's executor call; cross-shard duplicates re-execute, which
        # preserves correctness and keeps reassembly trivial).
        costs = [max(1, state.total_rows()) for state in state_list]
        shard_count = max(2, self._workers * self._stream_shards)
        shards = plan_shards(costs, shard_count)
        if self._max_inflight_states is not None:
            shards = [
                shard[start : start + self._max_inflight_states]
                for shard in shards
                for start in range(0, len(shard), self._max_inflight_states)
            ]

        def run_shard(
            positions: List[int],
        ) -> List[Tuple[int, Optional[YannakakisRun], Optional[BaseException]]]:
            shard_states = [state_list[position] for position in positions]
            shard_decision = RoutingDecision(
                backend=decision.backend,
                rule=decision.rule,
                reason=decision.reason,
                states=len(shard_states),
                unique_states=decision.unique_states,
                unique_rows=decision.unique_rows,
            )
            causes: Dict[int, BaseException] = {}
            runs = self._execute_batch(
                prepared, shard_states, shard_decision, overrides, causes
            )
            items: List[
                Tuple[int, Optional[YannakakisRun], Optional[BaseException]]
            ] = []
            for offset, (position, run) in enumerate(zip(positions, runs)):
                if run is None:
                    error = causes.get(
                        offset,
                        ExecutionError("state quarantined without recorded cause"),
                    )
                    items.append((position, None, error))
                else:
                    items.append((position, run, None))
            return items

        def generate() -> Iterator[StreamItem]:
            inflight: Dict[Future, Tuple[int, int]] = {}

            def emit(future: Future) -> Iterator[StreamItem]:
                for position, run, error in future.result():
                    with self._lock:
                        self.stats.streamed_items += 1
                    yield StreamItem(index=position, run=run, error=error)

            try:
                for positions in shards:
                    shard_states = len(positions)
                    shard_bytes = sum(
                        estimate_state_bytes(state_list[p]) for p in positions
                    )
                    self._admit(
                        shard_states, shard_bytes, wait=wait, timeout=timeout
                    )
                    try:
                        future = self._dispatcher.submit(run_shard, positions)
                    except BaseException:
                        self._release(shard_states, shard_bytes)
                        raise
                    future.add_done_callback(
                        lambda _f, n=shard_states, b=shard_bytes: self._release(
                            n, b
                        )
                    )
                    inflight[future] = (shard_states, shard_bytes)
                    # Surface anything already finished before dispatching
                    # more — this is what makes results stream.
                    for done_future in [f for f in list(inflight) if f.done()]:
                        inflight.pop(done_future)
                        yield from emit(done_future)
                while inflight:
                    done, _ = wait_futures(
                        set(inflight), return_when=FIRST_COMPLETED
                    )
                    for done_future in done:
                        inflight.pop(done_future)
                        yield from emit(done_future)
            finally:
                for future in inflight:
                    future.cancel()

        return ServiceStream(
            decision,
            str(overrides["transport"])
            if decision.backend == "parallel"
            else "none",
            len(shards),
            generate(),
        )
