"""Adaptive backend routing: a per-plan cost model for thin-vs-heavy batches.

The serving backends have sharply different fixed costs: the in-process
compiled kernel starts executing immediately (repeat-pool workloads run at
~10 µs/state), while the parallel pool pays dispatch pickling per state
(~86 µs/state measured in PR-5), a per-batch scheduling overhead, and — on
the one-shot path — a full pool spawn.  Guessing ``backend=`` per call is
exactly the kind of decision the plan-once economy can make *once*: plan
shape is fixed at prepare time, so one tiny timing probe per plan calibrates
a cost model that every later batch reuses.

:class:`RoutingPolicy` implements that model:

* **Probe.**  The first decision for a plan times a few executions of the
  serial kernel ``auto`` resolves to — vectorized when numpy imports,
  compiled otherwise (:data:`DEFAULT_PROBE_STATES` sample states) — and
  caches the measured per-row seconds on the plan's
  :class:`~repro.engine.analysis.AnalyzedSchema`
  (:meth:`~repro.engine.analysis.AnalyzedSchema.cached_cost_probe`), keyed by
  ``(target, root, backend)`` — shared across services, threads and batches.
  The probed states run through the plan's normal encode cache, so their
  work is not wasted: the batch that follows reuses the encodings.
* **Estimate.**  A batch is profiled by its *unique* states (the executors
  dedup verbatim duplicates, so duplicates are free on every backend):
  ``serial ≈ per_row_s × unique_rows`` against
  ``parallel ≈ batch_overhead + dispatch_per_state × unique_states +
  serial / workers (+ spawn if the pool is cold)``.
* **Gates.**  Scale gates keep obviously-thin work in-process without
  probing noise deciding: a batch below :data:`DEFAULT_MIN_PARALLEL_STATES`
  unique states or :data:`DEFAULT_MIN_PARALLEL_SERIAL_S` estimated serial
  seconds never routes to the pool (process parallelism cannot amortize at
  that scale), and degenerate batches — empty, all-empty-rows, or a single
  unique state — are in-process by construction.

Every knob is a constructor argument, so tests (and unusual deployments) can
force either outcome deterministically; ``backend=`` on the service API
remains an explicit override that bypasses the model entirely.

The policy is plan-shape agnostic: it touches only the ``plan_spec`` /
``compiled`` / ``vectorized`` / ``execute`` surface both
:class:`~repro.engine.prepared.PreparedQuery` and the cyclic
:class:`~repro.engine.cyclic.CyclicPreparedQuery` expose, so cyclic plans are
probed, cached (their ``(target, root, backend)`` probe keys live on the same
analysis, and never collide with tree plans — ``prepare`` refuses cyclic
schemas) and routed identically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..relational.database import DatabaseState
from .analysis import analyze
from .prepared import resolve_backend_for

__all__ = [
    "DEFAULT_BATCH_OVERHEAD_S",
    "DEFAULT_DISPATCH_PER_STATE_S",
    "DEFAULT_MIN_PARALLEL_SERIAL_S",
    "DEFAULT_MIN_PARALLEL_STATES",
    "DEFAULT_PROBE_STATES",
    "DEFAULT_SPAWN_S",
    "RoutingDecision",
    "RoutingPolicy",
    "override_decision",
]

#: Sample states timed by the calibration probe (spread across the batch).
DEFAULT_PROBE_STATES = 3

#: Cross-process cost charged per unique state: dispatch pickling, result
#: unpickling and reassembly.  Seeded from the PR-5 measurement (~86 µs per
#: msmall state over the pickle transport).
DEFAULT_DISPATCH_PER_STATE_S = 86e-6

#: Fixed per-batch cost of the supervised dispatch loop (sharding, submit,
#: harvest bookkeeping).
DEFAULT_BATCH_OVERHEAD_S = 2e-3

#: One-shot pool spawn cost charged when no live pool exists (fork start on
#: Linux; spawn elsewhere costs more, which only strengthens the in-process
#: choice this constant drives).
DEFAULT_SPAWN_S = 0.25

#: Below this many *unique* states the pool is never chosen: per-state
#: dispatch overhead cannot amortize across so few shards.
DEFAULT_MIN_PARALLEL_STATES = 32

#: Below this estimated serial cost (seconds) the whole batch is cheaper than
#: one round of pool bookkeeping; stay in-process.
DEFAULT_MIN_PARALLEL_SERIAL_S = 0.02

#: Floor for probed per-row cost, so zero-length timings cannot divide the
#: model into nonsense.
_MIN_PER_ROW_S = 1e-9


@dataclass(frozen=True)
class RoutingDecision:
    """One routing verdict with the evidence that produced it.

    ``backend`` is the resolved execution backend — the serial kernel
    ``auto`` resolves to (``"vectorized"`` when numpy imports, else
    ``"compiled"``) or ``"parallel"``; an explicit override may carry any
    backend name, ``"classic"`` included.  ``rule``
    is a stable machine-readable tag naming the branch that decided
    (``"override"``, ``"empty"``, ``"single-unique"``, ``"all-empty"``,
    ``"narrow-pool"``, ``"small-batch"``, ``"thin-serial"``,
    ``"parallel-wins"``, ``"parallel-loses"``); ``reason`` is the human
    sentence.  The estimate fields are ``None`` on branches that never
    reached the cost comparison.
    """

    backend: str
    rule: str
    reason: str
    states: int
    unique_states: int
    unique_rows: int
    per_row_s: Optional[float] = None
    estimated_serial_s: Optional[float] = None
    estimated_parallel_s: Optional[float] = None

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly form (CLI ``--json`` reporting)."""
        return {
            "backend": self.backend,
            "rule": self.rule,
            "reason": self.reason,
            "states": self.states,
            "unique_states": self.unique_states,
            "unique_rows": self.unique_rows,
            "per_row_s": self.per_row_s,
            "estimated_serial_s": self.estimated_serial_s,
            "estimated_parallel_s": self.estimated_parallel_s,
        }


def override_decision(
    backend: str, states: Sequence[DatabaseState]
) -> RoutingDecision:
    """The decision recorded when the caller forced ``backend=`` explicitly."""
    unique_states, unique_rows = _dedup_profile(states)
    return RoutingDecision(
        backend=backend,
        rule="override",
        reason=f"backend={backend!r} requested explicitly",
        states=len(states),
        unique_states=unique_states,
        unique_rows=unique_rows,
    )


def _dedup_profile(states: Sequence[DatabaseState]) -> Tuple[int, int]:
    """(unique state count, total rows across unique states)."""
    seen = set()
    rows = 0
    for state in states:
        if state not in seen:
            seen.add(state)
            rows += state.total_rows()
    return len(seen), rows


class RoutingPolicy:
    """The adaptive cost model; every constant is a constructor knob.

    Stateless apart from the probe cache it shares through
    :class:`~repro.engine.analysis.AnalyzedSchema`, so one policy instance
    can be shared by any number of threads and services.  ``per_row_s``
    pins the compiled per-row cost and disables probing entirely — tests and
    benchmarks use it to make decisions deterministic.
    """

    def __init__(
        self,
        *,
        probe_states: int = DEFAULT_PROBE_STATES,
        dispatch_per_state_s: float = DEFAULT_DISPATCH_PER_STATE_S,
        batch_overhead_s: float = DEFAULT_BATCH_OVERHEAD_S,
        spawn_s: float = DEFAULT_SPAWN_S,
        min_parallel_states: int = DEFAULT_MIN_PARALLEL_STATES,
        min_parallel_serial_s: float = DEFAULT_MIN_PARALLEL_SERIAL_S,
        per_row_s: Optional[float] = None,
    ) -> None:
        if probe_states < 1:
            raise ValueError(f"probe_states must be >= 1, got {probe_states}")
        if min_parallel_states < 2:
            raise ValueError(
                f"min_parallel_states must be >= 2, got {min_parallel_states}"
            )
        for name, value in (
            ("dispatch_per_state_s", dispatch_per_state_s),
            ("batch_overhead_s", batch_overhead_s),
            ("spawn_s", spawn_s),
            ("min_parallel_serial_s", min_parallel_serial_s),
        ):
            if value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")
        if per_row_s is not None and per_row_s <= 0:
            raise ValueError(f"per_row_s must be > 0, got {per_row_s}")
        self.probe_states = probe_states
        self.dispatch_per_state_s = dispatch_per_state_s
        self.batch_overhead_s = batch_overhead_s
        self.spawn_s = spawn_s
        self.min_parallel_states = min_parallel_states
        self.min_parallel_serial_s = min_parallel_serial_s
        self.per_row_s = per_row_s

    # -- calibration -----------------------------------------------------------

    def probe(
        self, prepared, states: Sequence[DatabaseState]
    ) -> float:
        """Per-row serial cost for ``prepared``, probing at most once.

        Returns the pinned ``per_row_s`` if configured, else the value cached
        on the plan's analysis, else times up to ``probe_states`` sample
        states (spread across the batch) on the serial kernel ``auto``
        resolves to *for this batch* — the vectorized backend when numpy
        imports and the states are big enough to amortize the array toll,
        compiled otherwise — and caches the result keyed by that backend,
        so a vectorized calibration never masquerades as a compiled one.  The
        probed executions go through the plan's encode cache, so a following
        batch re-executes them nearly for free.
        """
        if self.per_row_s is not None:
            return self.per_row_s
        serial = resolve_backend_for("auto", states)
        analysis = analyze(prepared.schema)
        cached = analysis.cached_cost_probe(
            prepared.target, root=prepared.root, backend=serial
        )
        if cached is not None:
            return cached
        count = len(states)
        picks = sorted(
            {
                index * (count - 1) // max(1, self.probe_states - 1)
                for index in range(min(self.probe_states, count))
            }
        )
        samples = [states[index] for index in picks]
        rows = sum(state.total_rows() for state in samples)
        plan = (
            prepared.vectorized if serial == "vectorized" else prepared.compiled
        )
        started = time.perf_counter()
        for state in samples:
            plan.execute_state(state)
        elapsed = time.perf_counter() - started
        per_row = max(_MIN_PER_ROW_S, elapsed / max(1, rows))
        analysis.store_cost_probe(
            prepared.target, per_row, root=prepared.root, backend=serial
        )
        return per_row

    # -- decisions -------------------------------------------------------------

    def is_degenerate(self, states: Sequence[DatabaseState]) -> bool:
        """True for batches where spawning a pool can never pay: empty, a
        single unique state, or no rows at all.  This is the (deliberately
        narrow) test the one-shot ``backend="parallel"`` path applies — an
        explicit parallel request is otherwise honored as given."""
        if not states:
            return True
        unique_states, unique_rows = _dedup_profile(states)
        return unique_states <= 1 or unique_rows == 0

    def decide(
        self,
        prepared,
        states: Sequence[DatabaseState],
        *,
        workers: int,
        pool_live: bool = False,
    ) -> RoutingDecision:
        """Route a batch: the in-process serial kernel vs the supervised pool.

        ``workers`` is the pool width a parallel route would use;
        ``pool_live`` suppresses the spawn charge when a warm pool already
        exists (the long-lived service case).
        """
        state_list = (
            states if isinstance(states, (list, tuple)) else list(states)
        )
        count = len(state_list)
        unique_states, unique_rows = _dedup_profile(state_list)
        serial_backend = resolve_backend_for("auto", state_list)

        def compiled(rule: str, reason: str, **estimates) -> RoutingDecision:
            return RoutingDecision(
                backend=serial_backend,
                rule=rule,
                reason=reason,
                states=count,
                unique_states=unique_states,
                unique_rows=unique_rows,
                **estimates,
            )

        if count == 0:
            return compiled("empty", "empty batch: nothing to execute")
        if unique_states <= 1:
            return compiled(
                "single-unique",
                "a single unique state cannot be parallelized across shards",
            )
        if unique_rows == 0:
            return compiled(
                "all-empty", "all states are empty; execution is trivial"
            )
        if workers < 2:
            return compiled(
                "narrow-pool",
                f"pool width {workers} offers no parallelism",
            )
        if unique_states < self.min_parallel_states:
            return compiled(
                "small-batch",
                f"{unique_states} unique state(s) is below the "
                f"min_parallel_states={self.min_parallel_states} gate",
            )
        per_row = self.probe(prepared, state_list)
        serial = per_row * unique_rows
        if serial < self.min_parallel_serial_s:
            return compiled(
                "thin-serial",
                f"estimated serial cost {serial * 1e3:.2f} ms is below the "
                f"min_parallel_serial_s={self.min_parallel_serial_s * 1e3:g} ms gate",
                per_row_s=per_row,
                estimated_serial_s=serial,
            )
        parallel = (
            self.batch_overhead_s
            + self.dispatch_per_state_s * unique_states
            + serial / workers
            + (0.0 if pool_live else self.spawn_s)
        )
        if parallel < serial:
            return RoutingDecision(
                backend="parallel",
                rule="parallel-wins",
                reason=(
                    f"estimated {parallel * 1e3:.1f} ms on {workers} workers "
                    f"vs {serial * 1e3:.1f} ms in-process"
                ),
                states=count,
                unique_states=unique_states,
                unique_rows=unique_rows,
                per_row_s=per_row,
                estimated_serial_s=serial,
                estimated_parallel_s=parallel,
            )
        return compiled(
            "parallel-loses",
            f"estimated {parallel * 1e3:.1f} ms on {workers} workers does "
            f"not beat {serial * 1e3:.1f} ms in-process",
            per_row_s=per_row,
            estimated_serial_s=serial,
            estimated_parallel_s=parallel,
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"RoutingPolicy(min_parallel_states={self.min_parallel_states}, "
            f"min_parallel_serial_s={self.min_parallel_serial_s}, "
            f"dispatch_per_state_s={self.dispatch_per_state_s})"
        )
