"""Cyclic queries on the compiled substrate: treefy once, execute many.

The paper's dichotomy (tree *vs.* cyclic schemas) splits the execution story
in two: tree schemas get Yannakakis — and, in this codebase, the compiled /
vectorized / parallel fast paths built on top of it — while cyclic schemas
historically fell back to :func:`repro.treeproj.solver.solve_with_tree_projection`,
which re-searches a tree projection and re-builds the augmented program on
*every call*.  This module closes the gap: a
:class:`CyclicPreparedQuery` plans the treefication once and lowers the
Theorem 6.1 construction into a frozen two-stage plan,

1. a **prologue** over the original state — materialize one relation per
   tree-projection node by joining (projections of) the base relations that
   cover it, then re-attach every base relation to a covering node with a
   guard semijoin (≤ ``|D|`` of them, the paper's anchor semijoins), and
2. the existing compiled full-reducer + bottom-up Yannakakis program of a
   :class:`~repro.engine.prepared.PreparedQuery` over the *projection's*
   (tree) schema with the same target,

so a cyclic query rides the same serial kernels, the same
:class:`~repro.engine.parallel.PlanSpec` round-trip, the same process pool
and the same :class:`~repro.engine.service.QueryService` routing as a tree
query.  Correctness is the proof idea of Theorem 6.1: each node value is a
superset of the projection of ``⋈ D`` onto the node, every base relation is
contained in some node and either joins into it un-projected or guards it
with a semijoin, hence ``⋈ (node values) = ⋈ D`` and the inner tree-schema
query computes exactly ``π_X(⋈ D)``.

Projection *selection* follows the Greco–Scarcello minimality criterion
(PAPERS.md): among candidate tree projections — a greedy-merge
triangulation, the search layers of
:func:`repro.treeproj.tree_projection.find_tree_projection`, the
single-relation treefication residue ``U(GR(D))`` of Corollary 3.2, and the
trivial one-node universe — each candidate is *shrunk* to an
attribute-minimal tree projection (no single attribute or node can be
dropped without breaking coverage or treeness) and the survivors are ranked
by ``(minimal, width, fan-out, total arity, node count)``: minimal
projections first, then the narrowest covering node, then the fewest base
relations joined per node.  The seed-era solver stays on verbatim as the
equivalence oracle (see ``tests/engine/test_cyclic_pipeline.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..exceptions import SchemaError, SearchBudgetExceeded, TreeProjectionError
from ..hypergraph.gyo import is_tree_schema
from ..hypergraph.schema import Attribute, DatabaseSchema, RelationSchema
from ..relational.database import DatabaseState
from ..relational.relation import Relation, semijoin_key_layout
from ..relational.yannakakis import YannakakisRun
from ..treefication.single import treefying_relation
from ..treeproj.tree_projection import find_tree_projection
from .prepared import PreparedQuery, resolve_backend, resolve_backend_for

__all__ = [
    "CyclicPreparedQuery",
    "ProjectionChoice",
    "choose_tree_projection",
]

#: Cap on candidate-validation work (``is_tree_schema`` + coverage checks)
#: spent shrinking one candidate toward minimality.  Planning is memoized per
#: target on the analysis, so this bounds a one-time cost; hitting the cap
#: only costs the ``minimal`` flag, never correctness.
_SHRINK_BUDGET = 4096

#: Budget handed to :func:`find_tree_projection` when it is consulted as a
#: candidate generator (its union-search layer is exponential in the number
#: of nested lower edges; the greedy-merge candidate does not depend on it).
_SEARCH_BUDGET = 20_000


@dataclass(frozen=True)
class ProjectionChoice:
    """A selected tree projection with the statistics it was ranked by.

    ``minimal`` reports the Greco–Scarcello-inspired local criterion: the
    shrink pass reached a fixpoint, i.e. no single attribute (or whole node)
    can be removed without breaking coverage of ``D ∪ (X)`` or treeness.
    ``width`` is the largest node arity, ``fanout`` the largest number of
    base-relation sources joined to materialize one node, ``total_arity``
    the summed node arities.
    """

    projection: DatabaseSchema
    method: str
    minimal: bool
    width: int
    fanout: int
    total_arity: int


# -- candidate generation -------------------------------------------------------


def _greedy_merge(lower: DatabaseSchema) -> Optional[DatabaseSchema]:
    """Triangulate by merging the most-overlapping relation pair until the
    schema is a tree.

    Starting from the reduction of ``D ∪ (X)``, repeatedly replace the pair
    with the largest attribute overlap (ties: smallest union, then input
    order) by its union and re-reduce.  Every step removes at least one
    relation, so the loop terminates; a single relation is trivially a tree
    schema, so it always succeeds.  Coverage of ``lower`` is invariant —
    relations are only ever replaced by supersets.
    """
    candidate = lower.reduction()
    while candidate and not is_tree_schema(candidate):
        rels = candidate.relations
        if len(rels) < 2:  # pragma: no cover - single relation is a tree
            break
        best: Optional[Tuple[Tuple[int, int, int, int], int, int]] = None
        for i in range(len(rels)):
            for j in range(i + 1, len(rels)):
                overlap = len(rels[i].attributes & rels[j].attributes)
                union_size = len(rels[i].attributes | rels[j].attributes)
                key = (-overlap, union_size, i, j)
                if best is None or key < best[0]:
                    best = (key, i, j)
        assert best is not None
        _, i, j = best
        union = rels[i].union(rels[j])
        merged = tuple(
            rel for k, rel in enumerate(rels) if k != i and k != j
        ) + (union,)
        candidate = DatabaseSchema(merged).reduction()
    return candidate


def _candidates(
    schema: DatabaseSchema, lower: DatabaseSchema, target: RelationSchema
) -> Iterable[Tuple[str, Optional[DatabaseSchema]]]:
    """Yield ``(method, candidate)`` pairs; candidates may be invalid or
    ``None`` — the caller validates."""
    yield "greedy-merge", _greedy_merge(lower)

    # Corollary 3.2's single-relation treefication: adding U(GR(D)) (widened
    # by the target, which must also be covered) treefies D.  The union with
    # X can re-introduce cyclicity in corner cases, so this one is validated
    # like any other candidate.
    residue = treefying_relation(schema).union(target)
    if residue:
        yield "residue", schema.add_relation(residue).reduction()

    # The layered tree-projection search, over an upper bound made of the
    # lower edges plus every pairwise union of overlapping lower edges plus
    # the treefication residue.  (The one-node universe is deliberately left
    # out of `upper`: its reduction would short-circuit the search at the
    # "upper" layer and hide the interesting candidates.)
    extras: List[RelationSchema] = []
    rels = lower.relations
    for i in range(len(rels)):
        for j in range(i + 1, len(rels)):
            if rels[i].attributes & rels[j].attributes:
                extras.append(rels[i].union(rels[j]))
    if residue:
        extras.append(residue)
    upper = lower.add_relations(extras)
    try:
        search = find_tree_projection(upper, lower, budget=_SEARCH_BUDGET)
    except SearchBudgetExceeded:
        search = None
    if search is not None and search.found:
        yield f"tp-{search.method}", search.projection

    # The trivial fallback: one node holding the whole universe.  Always a
    # valid tree projection; the shrink pass often improves it considerably.
    universe = schema.attributes.union(target)
    if universe:
        yield "universe", DatabaseSchema((universe,))


def _shrink(
    projection: DatabaseSchema,
    lower: DatabaseSchema,
    budget: int = _SHRINK_BUDGET,
) -> Tuple[DatabaseSchema, bool]:
    """Drive a valid tree projection toward minimality by local removals.

    Repeatedly drop a whole node, or a single attribute from a node, as long
    as the result still covers ``lower`` and remains a tree schema; each
    removal strictly shrinks the total arity, so the loop terminates.
    Returns the shrunk projection and whether a fixpoint was reached within
    ``budget`` validation checks (the ``minimal`` flag of
    :class:`ProjectionChoice`).
    """
    checks = 0
    current = projection
    while True:
        improved = False
        rels = current.relations
        if len(rels) > 1:
            for index in range(len(rels)):
                trial = DatabaseSchema(rels[:index] + rels[index + 1 :])
                checks += 1
                if checks > budget:
                    return current, False
                if trial.covers(lower) and is_tree_schema(trial):
                    current = trial.reduction()
                    improved = True
                    break
        if not improved:
            for index, rel in enumerate(rels):
                for attribute in rel.sorted_attributes():
                    slim = rel.difference((attribute,))
                    if not slim:
                        continue
                    trial = DatabaseSchema(
                        rels[:index] + (slim,) + rels[index + 1 :]
                    ).reduction()
                    checks += 1
                    if checks > budget:
                        return current, False
                    if trial.covers(lower) and is_tree_schema(trial):
                        current = trial
                        improved = True
                        break
                if improved:
                    break
        if not improved:
            return current, True


def _node_sources(
    schema: DatabaseSchema, node: RelationSchema
) -> Tuple[Tuple[int, Optional[RelationSchema]], ...]:
    """How to materialize one projection node from the base relations.

    Returns ``(relation_index, projection)`` pairs whose (projected) schemas
    union to exactly the node's attribute set; ``projection is None`` marks a
    base relation contained in the node, joined as-is (and therefore already
    anchored — no guard semijoin needed for it).  Contained relations are
    preferred, largest first; leftover attributes are covered greedily by
    projections of overlapping relations.
    """
    sources: List[Tuple[int, Optional[RelationSchema]]] = []
    covered: Set[Attribute] = set()
    contained = sorted(
        (
            index
            for index, rel in enumerate(schema.relations)
            if rel and rel <= node
        ),
        key=lambda index: (-len(schema[index]), index),
    )
    for index in contained:
        attrs = schema[index].attributes
        if not attrs <= covered:
            sources.append((index, None))
            covered |= attrs
    node_attrs = node.attributes
    while not node_attrs <= covered:
        best_index: Optional[int] = None
        best_gain = 0
        for index, rel in enumerate(schema.relations):
            gain = len((rel.attributes & node_attrs) - covered)
            if gain > best_gain:
                best_index, best_gain = index, gain
        if best_index is None:
            raise TreeProjectionError(
                f"internal error: node {node.to_notation()} is not covered "
                "by U(D)"
            )
        overlap = RelationSchema(schema[best_index].attributes & node_attrs)
        sources.append((best_index, overlap))
        covered |= overlap.attributes
    return tuple(sources)


def _assign_guards(
    schema: DatabaseSchema,
    nodes: Tuple[RelationSchema, ...],
    sources: Tuple[Tuple[Tuple[int, Optional[RelationSchema]], ...], ...],
) -> Tuple[Tuple[int, int], ...]:
    """The guard semijoins: ``(node_index, relation_index)`` pairs.

    Theorem 6.1's anchor step — every base relation must constrain some node
    that contains it.  A relation joined *un-projected* into a containing
    node is anchored for free; every other relation guards the first node
    that contains it (≤ ``|D|`` semijoins total).
    """
    unprojected: List[Set[int]] = [
        {index for index, projection in node_sources if projection is None}
        for node_sources in sources
    ]
    guards: List[Tuple[int, int]] = []
    for rel_index, rel in enumerate(schema.relations):
        holder: Optional[int] = None
        anchored = False
        for node_index, node in enumerate(nodes):
            if rel <= node:
                if rel_index in unprojected[node_index]:
                    anchored = True
                    break
                if holder is None:
                    holder = node_index
        if anchored:
            continue
        if holder is None:
            raise TreeProjectionError(
                f"tree projection does not cover base relation "
                f"{rel.to_notation()}"
            )
        guards.append((holder, rel_index))
    return tuple(guards)


def _score(choice: ProjectionChoice) -> Tuple[int, int, int, int, int, str]:
    return (
        0 if choice.minimal else 1,
        choice.width,
        choice.fanout,
        choice.total_arity,
        len(choice.projection),
        choice.projection.to_notation(),
    )


def choose_tree_projection(
    schema: DatabaseSchema, target: Union[RelationSchema, Iterable[Attribute]]
) -> ProjectionChoice:
    """Select a tree projection of ``D`` w.r.t. ``D ∪ (X)`` for execution.

    Generates candidates (greedy-merge triangulation, the layered
    :func:`find_tree_projection` search, the Corollary 3.2 residue, the
    one-node universe), shrinks each toward minimality, and ranks them by
    ``(minimal, width, fanout, total arity, node count)`` — the
    Greco–Scarcello preference for minimal projections with the narrowest
    intermediate relations.  Deterministic: ties break on notation.
    """
    if not isinstance(schema, DatabaseSchema):
        schema = DatabaseSchema(schema)
    target_schema = (
        target if isinstance(target, RelationSchema) else RelationSchema(target)
    )
    if not target_schema <= schema.attributes:
        raise SchemaError("the target must be contained in U(D)")
    if len(schema) == 0:
        return ProjectionChoice(
            projection=DatabaseSchema(()),
            method="empty",
            minimal=True,
            width=0,
            fanout=0,
            total_arity=0,
        )
    lower = (
        schema.add_relation(target_schema) if target_schema else schema
    )
    best: Optional[ProjectionChoice] = None
    seen: Set[DatabaseSchema] = set()
    for method, candidate in _candidates(schema, lower, target_schema):
        if candidate is None:
            continue
        candidate = candidate.reduction()
        if not (candidate.covers(lower) and is_tree_schema(candidate)):
            continue
        shrunk, minimal = _shrink(candidate, lower)
        if shrunk in seen:
            continue
        seen.add(shrunk)
        nodes = shrunk.relations
        sources = tuple(_node_sources(schema, node) for node in nodes)
        choice = ProjectionChoice(
            projection=shrunk,
            method=method,
            minimal=minimal,
            width=max((len(node) for node in nodes), default=0),
            fanout=max((len(s) for s in sources), default=0),
            total_arity=sum(len(node) for node in nodes),
        )
        if best is None or _score(choice) < _score(best):
            best = choice
    if best is None:  # pragma: no cover - the universe candidate always validates
        raise TreeProjectionError(
            f"no tree projection found for {schema.to_notation()}"
        )
    return best


def _default_root(
    nodes: Tuple[RelationSchema, ...], target: RelationSchema
) -> int:
    """The node covering the target, if any (the solver's choice), else 0."""
    for index, node in enumerate(nodes):
        if target <= node:
            return index
    return 0


# -- the frozen cyclic plan -----------------------------------------------------


class _CyclicPlanAdapter:
    """A serial-kernel adapter with the compiled/vectorized plan surface.

    Duck-types the slice of :class:`~repro.relational.compiled.CompiledPlan`
    / :class:`~repro.relational.vectorized.VectorizedPlan` the engine layers
    touch — ``execute_state``, ``execute_batch``, ``max_interned_values`` —
    but runs the owner's classic prologue (node materialization + guard
    semijoins) before handing the *derived* state to the inner tree-schema
    plan.  This is what lets the parallel shard body, the shm fallback path,
    the in-process executor and the routing prober run a cyclic plan without
    knowing it is one.
    """

    __slots__ = ("_owner", "_plan", "_backend")

    def __init__(self, owner: "CyclicPreparedQuery", plan, backend: str) -> None:
        self._owner = owner
        self._plan = plan
        self._backend = backend

    @property
    def max_interned_values(self) -> Optional[int]:
        return self._plan.max_interned_values

    @max_interned_values.setter
    def max_interned_values(self, value: Optional[int]) -> None:
        self._plan.max_interned_values = value

    def execute_state(self, state: DatabaseState, stats=None) -> YannakakisRun:
        derived, prologue_max = self._owner._derive(state)
        if len(self._owner._nodes) == 1:
            return self._owner._single_node_run(
                derived.relations[0], prologue_max, self._backend
            )
        run = self._plan.execute_state(derived, stats=stats)
        return self._owner._merge(run, prologue_max)

    def execute_batch(self, states: Iterable[DatabaseState]) -> List[YannakakisRun]:
        """Batched execution with input-level dedup on top of the plan's own.

        Duplicate *input* states are derived and executed once; distinct
        inputs whose derived node states coincide still dedup inside the
        inner plan's batch.  Every returned run carries the one shared
        :class:`~repro.relational.compiled.ExecutionStats` of the batch.
        """
        from ..relational.compiled import ExecutionStats

        stats = ExecutionStats()
        unique: List[DatabaseState] = []
        index_of: Dict[DatabaseState, int] = {}
        positions: List[int] = []
        for state in states:
            index = index_of.get(state)
            if index is None:
                index = len(unique)
                index_of[state] = index
                unique.append(state)
            else:
                stats.deduped_states += 1
            positions.append(index)
        derived_list: List[DatabaseState] = []
        prologue_maxes: List[int] = []
        for state in unique:
            derived, prologue_max = self._owner._derive(state)
            derived_list.append(derived)
            prologue_maxes.append(prologue_max)
        if len(self._owner._nodes) == 1:
            # Single-node projection (e.g. a clique's universe node): the
            # inner tree plan is a bare projection of the node value, so the
            # per-state encode/row-program round-trip buys nothing — project
            # directly and keep the batch's dedup stats.
            merged = [
                self._owner._single_node_run(
                    derived.relations[0], prologue_max, self._backend, stats
                )
                for derived, prologue_max in zip(derived_list, prologue_maxes)
            ]
            return [merged[index] for index in positions]
        runs = self._plan.execute_batch(derived_list, stats=stats)
        merged = [
            self._owner._merge(run, prologue_max)
            for run, prologue_max in zip(runs, prologue_maxes)
        ]
        return [merged[index] for index in positions]


class CyclicPreparedQuery:
    """A frozen execution plan for ``π_X(⋈ D)`` over a *cyclic* schema.

    Built by :meth:`repro.engine.analysis.AnalyzedSchema.prepare_cyclic`;
    carries the selected tree projection (:class:`ProjectionChoice`), the
    per-node source lists and guard semijoins of the Theorem 6.1 prologue,
    and an inner :class:`~repro.engine.prepared.PreparedQuery` over the
    projection's tree schema that does the heavy lifting on whichever serial
    kernel is requested.  The public surface mirrors ``PreparedQuery`` —
    ``execute`` / ``execute_many`` with the full
    ``backend={classic,compiled,vectorized,auto,parallel}`` matrix,
    ``plan_spec()`` for process-pool round-trips, ``compiled`` /
    ``vectorized`` plan handles, ``reset_compiled()`` — so every engine
    layer above (parallel executor, adaptive router, query service) treats
    the two interchangeably.
    """

    __slots__ = (
        "_schema",
        "_target",
        "_choice",
        "_nodes",
        "_sources",
        "_guards",
        "_guard_layout",
        "_inner",
        "_root",
        "_prologue_joins",
        "_prologue_projects",
        "_compiled",
        "_vectorized",
    )

    #: Marks this plan as cyclic for duck-typed dispatch
    #: (:meth:`~repro.engine.parallel.PlanSpec.of` and the shm transport
    #: check this instead of importing the class).
    is_cyclic_plan = True

    def __init__(
        self,
        schema: Union[DatabaseSchema, Iterable[RelationSchema]],
        target: Union[RelationSchema, Iterable[Attribute]],
        *,
        root: Optional[int] = None,
        choice: Optional[ProjectionChoice] = None,
    ) -> None:
        if not isinstance(schema, DatabaseSchema):
            schema = DatabaseSchema(schema)
        target_schema = (
            target
            if isinstance(target, RelationSchema)
            else RelationSchema(target)
        )
        if not target_schema <= schema.attributes:
            raise SchemaError("the target must be contained in U(D)")
        if choice is None:
            choice = choose_tree_projection(schema, target_schema)
        nodes = choice.projection.relations
        sources = tuple(_node_sources(schema, node) for node in nodes)
        guards = _assign_guards(schema, nodes, sources)
        if root is None:
            root = _default_root(nodes, target_schema)
        elif nodes and not 0 <= root < len(nodes):
            raise ValueError(
                f"root must index a projection node (0..{len(nodes) - 1}), "
                f"got {root}"
            )
        # Through the façade so repeated prepares of the same projection —
        # including worker-side PlanSpec rebuilds — share one analysis and
        # one inner prepared query (compiled plans included).
        from .analysis import analyze

        inner = analyze(choice.projection).prepare(target_schema, root=root)
        object.__setattr__(self, "_schema", schema)
        object.__setattr__(self, "_target", target_schema)
        object.__setattr__(self, "_choice", choice)
        object.__setattr__(self, "_nodes", nodes)
        object.__setattr__(self, "_sources", sources)
        object.__setattr__(self, "_guards", guards)
        # Guards grouped per node with their semijoin key layouts hoisted
        # out of the per-state path: every state filters the same schema
        # pairs, so the shared columns and key getters are plan constants.
        grouped_guards: Dict[int, List[int]] = {}
        for node_index, rel_index in guards:
            grouped_guards.setdefault(node_index, []).append(rel_index)
        object.__setattr__(
            self,
            "_guard_layout",
            tuple(
                (
                    node_index,
                    tuple(rel_indexes),
                    tuple(
                        semijoin_key_layout(
                            nodes[node_index], schema.relations[rel_index]
                        )
                        for rel_index in rel_indexes
                    ),
                )
                for node_index, rel_indexes in grouped_guards.items()
            ),
        )
        object.__setattr__(self, "_inner", inner)
        object.__setattr__(self, "_root", root)
        object.__setattr__(
            self,
            "_prologue_joins",
            sum(max(len(node_sources) - 1, 0) for node_sources in sources),
        )
        object.__setattr__(
            self,
            "_prologue_projects",
            sum(
                1
                for node_sources in sources
                for _, projection in node_sources
                if projection is not None
            ),
        )
        object.__setattr__(self, "_compiled", None)
        object.__setattr__(self, "_vectorized", None)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("CyclicPreparedQuery is immutable")

    # -- plan introspection ----------------------------------------------------

    @property
    def schema(self) -> DatabaseSchema:
        """The original (cyclic) schema ``D``."""
        return self._schema

    @property
    def target(self) -> RelationSchema:
        """The projection target ``X``."""
        return self._target

    @property
    def root(self) -> int:
        """Index of the projection node the inner bottom-up join ends in."""
        return self._root

    @property
    def tree_projection(self) -> DatabaseSchema:
        """The selected tree projection ``D'' ∈ TP(·, D ∪ (X))``."""
        return self._choice.projection

    @property
    def projection_choice(self) -> ProjectionChoice:
        """The full selection record (method, minimality, width, fan-out)."""
        return self._choice

    @property
    def projection_method(self) -> str:
        """Which candidate generator produced the winning projection."""
        return self._choice.method

    @property
    def treefication_width(self) -> int:
        """Largest node arity of the tree projection."""
        return self._choice.width

    @property
    def guard_semijoins(self) -> int:
        """Number of Theorem 6.1 anchor semijoins in the prologue."""
        return len(self._guards)

    @property
    def prologue_joins(self) -> int:
        """Number of joins materializing projection-node states."""
        return self._prologue_joins

    @property
    def inner(self) -> PreparedQuery:
        """The tree-schema prepared query over the projection's nodes."""
        return self._inner

    @property
    def compiled(self) -> _CyclicPlanAdapter:
        """The interned-value kernel behind the classic prologue."""
        if self._compiled is None:
            object.__setattr__(
                self,
                "_compiled",
                _CyclicPlanAdapter(self, self._inner.compiled, "compiled"),
            )
        return self._compiled

    @property
    def vectorized(self) -> _CyclicPlanAdapter:
        """The array kernel behind the classic prologue."""
        if self._vectorized is None:
            object.__setattr__(
                self,
                "_vectorized",
                _CyclicPlanAdapter(self, self._inner.vectorized, "vectorized"),
            )
        return self._vectorized

    def reset_compiled(self) -> None:
        """Drop the lazily built serial plans (and the inner query's)."""
        object.__setattr__(self, "_compiled", None)
        object.__setattr__(self, "_vectorized", None)
        self._inner.reset_compiled()

    def plan_spec(self):
        """The picklable :class:`~repro.engine.parallel.PlanSpec` identifying
        this query across process boundaries (``spec.cyclic`` is set, so
        :func:`~repro.engine.analysis.prepared_from_spec` rebuilds through
        :meth:`~repro.engine.analysis.AnalyzedSchema.prepare_cyclic`)."""
        from .parallel import PlanSpec

        return PlanSpec.of(self)

    def describe(self) -> str:
        """The whole plan — prologue and inner program — as readable text."""
        lines = [
            f"cyclic prepared query: π_{self._target.to_notation() or '{}'}"
            f"(⋈ {self._schema}) via tree projection "
            f"{self._choice.projection.to_notation()} "
            f"[{self._choice.method}"
            f"{', minimal' if self._choice.minimal else ''}]"
        ]
        for node_index, node in enumerate(self._nodes):
            parts = []
            for rel_index, projection in self._sources[node_index]:
                if projection is None:
                    parts.append(f"R{rel_index}")
                else:
                    parts.append(
                        f"π_{projection.to_notation()}(R{rel_index})"
                    )
            lines.append(
                f"  N{node_index}[{node.to_notation()}] := {' ⋈ '.join(parts)}"
            )
        for node_index, rel_index in self._guards:
            lines.append(f"  N{node_index} := N{node_index} ⋉ R{rel_index}")
        lines.extend(
            "  " + line for line in self._inner.describe().splitlines()
        )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"CyclicPreparedQuery(schema={self._schema.to_notation()!r}, "
            f"target={self._target.to_notation()!r}, "
            f"projection={self._choice.projection.to_notation()!r}, "
            f"method={self._choice.method!r})"
        )

    # -- the Theorem 6.1 prologue ----------------------------------------------

    def _derive(self, state: DatabaseState) -> Tuple[DatabaseState, int]:
        """Materialize the projection-node state from the original state.

        Classic :class:`~repro.relational.relation.Relation` operators: node
        values are joins of (projections of) base relations — supersets of
        ``π_node(⋈ D)`` — then each guard semijoin re-attaches one base
        relation per Theorem 6.1.  Returns the derived state over the
        projection's schema plus the largest intermediate produced.
        """
        relations = state.relations
        values: List[Relation] = []
        largest = 0
        for node_index, node in enumerate(self._nodes):
            value: Optional[Relation] = None
            for rel_index, projection in self._sources[node_index]:
                relation = relations[rel_index]
                if projection is not None:
                    relation = relation.project(projection)
                value = (
                    relation if value is None else value.natural_join(relation)
                )
                if len(value) > largest:
                    largest = len(value)
            if value is None:
                # A node with no attributes (degenerate); its only sound
                # materialization is the nullary TRUE — guards still apply.
                value = Relation.nullary_true()
            values.append(value)
        # All guards on one node fuse into a single conjunctive filter pass
        # (semijoins commute), skipping the per-guard intermediate relations
        # a fold would materialize; key layouts were hoisted at plan time.
        for node_index, rel_indexes, layouts in self._guard_layout:
            values[node_index] = values[node_index].semijoin_many(
                [relations[rel_index] for rel_index in rel_indexes],
                layouts=layouts,
            )
        derived = DatabaseState(self._choice.projection, values)
        return derived, largest

    def _single_node_run(
        self,
        value: Relation,
        prologue_max: int,
        backend: str,
        stats=None,
    ) -> YannakakisRun:
        """Finish a single-node plan: the answer is ``π_X(node value)``.

        With one projection node the inner tree schema has no edges — no
        full reducer, no bottom-up join — so Yannakakis degenerates to one
        projection.  Used by the kernel adapters to skip the inner plan's
        per-state encode round-trip; the classic path keeps going through
        :class:`~repro.engine.prepared.PreparedQuery` so the property tests
        retain an independently computed oracle.
        """
        result = value.project(self._target)
        return YannakakisRun(
            result=result,
            semijoin_count=len(self._guards),
            join_count=self._prologue_joins,
            max_intermediate_size=max(len(value), len(result), prologue_max),
            backend=backend,
            stats=stats,
        )

    def _merge(self, run: YannakakisRun, prologue_max: int) -> YannakakisRun:
        """Fold the prologue's accounting into an inner run.

        Constructed directly rather than via :func:`dataclasses.replace` —
        ``replace`` pays per-call field introspection, which at one call per
        state is measurable on many-small-state batches.
        """
        return YannakakisRun(
            result=run.result,
            semijoin_count=run.semijoin_count + len(self._guards),
            join_count=run.join_count + self._prologue_joins,
            max_intermediate_size=max(run.max_intermediate_size, prologue_max),
            backend=run.backend,
            stats=run.stats,
        )

    # -- execution -------------------------------------------------------------

    def execute(self, state: DatabaseState, *, backend: str = "auto") -> YannakakisRun:
        """Run the frozen plan against one state; no planning happens here.

        Same contract as :meth:`PreparedQuery.execute`: ``backend`` picks the
        serial kernel (``"auto"`` applies the shape-aware profitability gate
        of :func:`~repro.engine.prepared.resolve_backend_for` to the
        *original* state), the returned run's counts include the prologue's
        guard semijoins and node-materialization joins.
        """
        resolved = resolve_backend_for(backend, (state,))
        if resolved == "parallel":
            raise ValueError(
                "the parallel backend batches states across processes; "
                "use execute_many(states, backend='parallel') or a "
                "ParallelExecutor"
            )
        if state.schema is not self._schema and state.schema != self._schema:
            raise SchemaError("the state is for a different schema than the query")
        if len(self._schema) == 0:
            return YannakakisRun(
                result=Relation.nullary_true(),
                semijoin_count=0,
                join_count=0,
                max_intermediate_size=1,
                backend=resolved,
            )
        if resolved == "vectorized":
            return self.vectorized.execute_state(state)
        if resolved == "compiled":
            return self.compiled.execute_state(state)
        return self._execute_classic(state)

    def _execute_classic(self, state: DatabaseState) -> YannakakisRun:
        """Prologue + inner classic executor (the property-test oracle)."""
        derived, prologue_max = self._derive(state)
        run = self._inner.execute(derived, backend="classic")
        return self._merge(run, prologue_max)

    def execute_many(
        self,
        states: Iterable[DatabaseState],
        *,
        backend: str = "auto",
        workers: Optional[int] = None,
        executor: Optional[object] = None,
        shard_timeout: Optional[float] = None,
        max_retries: Optional[int] = None,
        failure_policy: Optional[str] = None,
        transport: Optional[str] = None,
    ) -> List[YannakakisRun]:
        """Execute the plan against each state, amortizing the planning cost.

        Identical contract and knob matrix to
        :meth:`PreparedQuery.execute_many` — serial batches share the inner
        plan's interner and per-slot encoding caches (plus input-level
        dedup of repeated states before the prologue runs), and
        ``backend="parallel"`` ships the plan to the process pool as a cyclic
        :class:`~repro.engine.parallel.PlanSpec` (workers rebuild via
        ``prepare_cyclic`` and run the same prologue per shard; the shm
        transport's zero-copy vectorized attach is skipped, since the wire
        format carries the *original* relations, not the node states).
        """
        resolved = resolve_backend(backend)
        if executor is not None and backend not in ("parallel", "auto"):
            raise ValueError("executor= requires backend='parallel' (or 'auto')")
        if executor is not None or resolved == "parallel":
            overrides = {}
            if shard_timeout is not None:
                overrides["shard_timeout"] = shard_timeout
            if max_retries is not None:
                overrides["max_retries"] = max_retries
            if failure_policy is not None:
                overrides["failure_policy"] = failure_policy
            if transport is not None:
                overrides["transport"] = transport
            if executor is not None:
                if workers is not None:
                    raise ValueError(
                        "workers= cannot be combined with executor=; the "
                        "executor's pool width applies"
                    )
                return executor.execute_many(self, states, **overrides)
            state_list = list(states)
            if not state_list:
                return []
            from .parallel import ParallelExecutor, execute_in_process
            from .routing import RoutingPolicy

            if not overrides and RoutingPolicy().is_degenerate(state_list):
                return execute_in_process(self, state_list)
            with ParallelExecutor(workers=workers) as pool:
                return pool.execute_many(self, state_list, **overrides)
        if workers is not None:
            raise ValueError("workers= requires backend='parallel'")
        if (
            shard_timeout is not None
            or max_retries is not None
            or failure_policy is not None
            or transport is not None
        ):
            raise ValueError(
                "shard_timeout=/max_retries=/failure_policy=/transport= "
                "require backend='parallel'; the serial backends run "
                "in-process"
            )
        state_list = states if isinstance(states, list) else list(states)
        resolved = resolve_backend_for(backend, state_list)
        if resolved == "vectorized" and len(self._schema) > 0:
            return self.vectorized.execute_batch(state_list)
        if resolved == "compiled" and len(self._schema) > 0:
            return self.compiled.execute_batch(state_list)
        return [self.execute(state, backend=resolved) for state in state_list]
