"""The engine façade: plan-once / execute-many query processing.

This package is the primary public API of the library:

* :func:`analyze` — turn a schema (or schema notation text) into an
  :class:`AnalyzedSchema`, an immutable façade that lazily computes and
  caches the GYO trace, qual tree, acyclicity flags, treefication and
  per-target canonical connections / join plans;
* :meth:`AnalyzedSchema.prepare` — compile a :class:`PreparedQuery` (full
  reducer + Yannakakis join order + early-projection schedule, derived once)
  whose :meth:`~PreparedQuery.execute` / :meth:`~PreparedQuery.execute_many`
  evaluate the query against any number of database states with zero
  re-planning cost, routed by default through the columnar interned-value
  backend of :mod:`repro.relational.compiled` (``backend="classic"``
  selects the object-tuple oracle operators).

* :class:`ParallelExecutor` — the sharded multi-process serving layer
  (:mod:`repro.engine.parallel`): batches of independent states shard across
  a reusable, *supervised* process pool (``backend="parallel"``), workers
  rebuilding and caching plans from picklable :class:`PlanSpec` identities.
  Worker crashes, hangs and unpicklable states are recovered via pool
  respawn, per-shard timeout/retry with backoff, bisection and in-process
  fallback; unrecoverable states surface as a structured
  :class:`~repro.exceptions.ShardExecutionError` or, under
  ``failure_policy="degrade"``, as quarantined positions in
  :class:`ParallelStats` (see ``docs/robustness.md``).  The deterministic
  fault-injection harness behind the recovery tests lives in
  :mod:`repro.engine.faults`.

* :meth:`AnalyzedSchema.prepare_cyclic` — the same plan-once / execute-many
  story for *cyclic* schemas (:mod:`repro.engine.cyclic`): a
  :class:`CyclicPreparedQuery` selects a tree projection once (Greco–
  Scarcello minimality-guided), lowers Theorem 6.1's guard-semijoin
  construction into a frozen prologue, and serves through the same
  compiled/vectorized/parallel substrate and :class:`PlanSpec` round-trip
  as tree schemas.

* :class:`QueryService` — the long-lived streaming serving front end
  (:mod:`repro.engine.service`): thread-safe ``submit``/``stream`` APIs with
  bounded admission control, adaptive compiled-vs-parallel routing from a
  per-plan cost probe (:mod:`repro.engine.routing`), spec-pinned worker
  pools for plan-cache affinity, and an optional shared-memory state
  transport (``transport="shm"``).  See ``docs/serving.md``.

The classic free functions (``gyo_reduce``, ``canonical_connection``,
``plan_join_query``, ``yannakakis``) remain available and now delegate here,
so they amortize across calls automatically.  See ``docs/api.md``.
"""

from .analysis import (
    AnalyzedSchema,
    analysis_cache_size,
    analyze,
    clear_analysis_cache,
    peek_analysis,
    prepared_from_spec,
)
from .prepared import JoinStep, PreparedQuery, resolve_backend

#: Re-exported lazily via __getattr__: repro.engine.parallel (and the
#: service/routing layers above it) pull in multiprocessing/
#: concurrent.futures/threading, which every plain `import repro` (CLI
#: startup included) should not pay for.  `from repro.engine import
#: ParallelExecutor` still works — PEP 562 routes it through __getattr__.
_PARALLEL_EXPORTS = (
    "ParallelExecutor",
    "ParallelStats",
    "PlanSpec",
    "execute_in_process",
)
_ROUTING_EXPORTS = ("RoutingDecision", "RoutingPolicy")
_CYCLIC_EXPORTS = (
    "CyclicPreparedQuery",
    "ProjectionChoice",
    "choose_tree_projection",
)
_SERVICE_EXPORTS = (
    "QueryService",
    "ServiceHandle",
    "ServiceStats",
    "ServiceStream",
    "StreamItem",
)
_CATALOG_EXPORTS = (
    "CatalogStats",
    "PlanCatalog",
    "StateLogWriter",
    "default_catalog",
    "iter_states",
    "load_schema",
    "load_state",
    "read_state_log",
    "resolve_catalog",
    "save_schema",
    "save_state",
)


def __getattr__(name: str):
    if name in _PARALLEL_EXPORTS:
        from . import parallel

        return getattr(parallel, name)
    if name in _ROUTING_EXPORTS:
        from . import routing

        return getattr(routing, name)
    if name in _CYCLIC_EXPORTS:
        from . import cyclic

        return getattr(cyclic, name)
    if name in _SERVICE_EXPORTS:
        from . import service

        return getattr(service, name)
    if name in _CATALOG_EXPORTS:
        from . import catalog

        return getattr(catalog, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(
        set(globals())
        | set(_PARALLEL_EXPORTS)
        | set(_ROUTING_EXPORTS)
        | set(_SERVICE_EXPORTS)
        | set(_CYCLIC_EXPORTS)
        | set(_CATALOG_EXPORTS)
    )

__all__ = [
    "AnalyzedSchema",
    "CatalogStats",
    "CyclicPreparedQuery",
    "ParallelExecutor",
    "ParallelStats",
    "PlanCatalog",
    "PlanSpec",
    "PreparedQuery",
    "ProjectionChoice",
    "JoinStep",
    "QueryService",
    "RoutingDecision",
    "RoutingPolicy",
    "ServiceHandle",
    "ServiceStats",
    "ServiceStream",
    "StateLogWriter",
    "StreamItem",
    "analyze",
    "analysis_cache_size",
    "choose_tree_projection",
    "clear_analysis_cache",
    "default_catalog",
    "execute_in_process",
    "iter_states",
    "load_schema",
    "load_state",
    "peek_analysis",
    "prepared_from_spec",
    "read_state_log",
    "resolve_catalog",
    "save_schema",
    "save_state",
    "resolve_backend",
]
