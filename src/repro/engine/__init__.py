"""The engine façade: plan-once / execute-many query processing.

This package is the primary public API of the library:

* :func:`analyze` — turn a schema (or schema notation text) into an
  :class:`AnalyzedSchema`, an immutable façade that lazily computes and
  caches the GYO trace, qual tree, acyclicity flags, treefication and
  per-target canonical connections / join plans;
* :meth:`AnalyzedSchema.prepare` — compile a :class:`PreparedQuery` (full
  reducer + Yannakakis join order + early-projection schedule, derived once)
  whose :meth:`~PreparedQuery.execute` / :meth:`~PreparedQuery.execute_many`
  evaluate the query against any number of database states with zero
  re-planning cost, routed by default through the columnar interned-value
  backend of :mod:`repro.relational.compiled` (``backend="classic"``
  selects the object-tuple oracle operators).

The classic free functions (``gyo_reduce``, ``canonical_connection``,
``plan_join_query``, ``yannakakis``) remain available and now delegate here,
so they amortize across calls automatically.  See ``docs/api.md``.
"""

from .analysis import (
    AnalyzedSchema,
    analysis_cache_size,
    analyze,
    clear_analysis_cache,
    peek_analysis,
)
from .prepared import JoinStep, PreparedQuery, resolve_backend

__all__ = [
    "AnalyzedSchema",
    "PreparedQuery",
    "JoinStep",
    "analyze",
    "analysis_cache_size",
    "clear_analysis_cache",
    "peek_analysis",
    "resolve_backend",
]
