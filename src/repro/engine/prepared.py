"""Compiled execution plans: plan once, execute many.

A :class:`PreparedQuery` freezes everything about evaluating ``π_X(⋈ D)``
over a tree schema that depends only on the *schema* and the *target* — the
qual tree, its rooted orientation, the full-reducer semijoin program, the
early-projection schedule of the bottom-up join, and the final projection —
so that :meth:`PreparedQuery.execute` does no planning work at all: it only
runs semijoins, joins and projections against the supplied
:class:`~repro.relational.database.DatabaseState`.

The execution semantics (result, semijoin/join counts, maximum intermediate
size) are exactly those of :func:`repro.relational.yannakakis.yannakakis`,
which is now a thin wrapper around this class.  The key observation that
makes ahead-of-time compilation possible is that the attribute set of every
intermediate relation in Yannakakis' bottom-up join is determined by the
schema and target alone: a node's relation, at the moment it is merged into
its mother, carries ``schema[node]``'s attributes plus whatever its own
children were allowed to keep.  The constructor replays that recurrence
symbolically and records, per tree edge, whether a projection is needed and
onto which attributes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..exceptions import NotATreeSchemaError, SchemaError
from ..hypergraph.qual_graph import QualGraph
from ..hypergraph.schema import Attribute, DatabaseSchema, RelationSchema
from ..relational.compiled import CompiledPlan, compile_plan
from ..relational.database import DatabaseState
from ..relational.vectorized import VectorizedPlan, numpy_available, vectorize_plan
from ..relational.relation import Relation
from ..relational.yannakakis import (
    SemijoinStep,
    YannakakisRun,
    full_reducer_semijoins,
    rooted_orientation,
)

__all__ = [
    "JoinStep",
    "PreparedQuery",
    "VECTORIZED_MIN_STATE_ROWS",
    "VECTORIZED_NARROW_RELATIONS",
    "VECTORIZED_RELATION_ROWS_FACTOR",
    "resolve_backend",
    "resolve_backend_for",
    "vectorized_batch_profitable",
]

#: Execution backends accepted by :meth:`PreparedQuery.execute` /
#: :meth:`PreparedQuery.execute_many` (``parallel`` is batch-only).
_BACKENDS = ("auto", "classic", "compiled", "parallel", "vectorized")


def resolve_backend(backend: str) -> str:
    """Normalize a backend name: ``auto`` resolves to the fastest serial kernel.

    With numpy importable that is the array-backed vectorized kernel of
    :mod:`repro.relational.vectorized`; without it, the compiled
    interned-value backend (the vectorized row-program fallback adds
    indirection over the same step program, so ``auto`` does not pay for
    it).  Both compute exactly what the classic object-tuple operators
    compute — the equivalence suites hold on every exposed entry point —
    so ``auto`` always takes a fast path; ``classic`` remains available as
    the oracle and for A/B timing.  ``parallel`` (the sharded process-pool
    layer of :mod:`repro.engine.parallel`) resolves to itself — it batches
    states across workers and is therefore accepted only by
    :meth:`PreparedQuery.execute_many`.
    """
    if backend not in _BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {', '.join(_BACKENDS)}"
        )
    if backend == "auto":
        return "vectorized" if numpy_available() else "compiled"
    return backend


#: Below this many total rows per state, ``auto`` keeps the compiled
#: backend even with numpy importable: the array kernel pays a fixed
#: per-call toll (ndarray construction, argsort/searchsorted dispatch) on
#: every relation it touches, and on tiny states that toll dwarfs the
#: work.  The crossover sits around 200–250 total rows on the PR-8
#: benchmark host; 256 keeps a margin on the compiled side of it.  This is
#: the documented *floor*; :func:`vectorized_batch_profitable` adds a
#: shape-aware test on top of it.
VECTORIZED_MIN_STATE_ROWS = 256

#: Shape term of the profitability gate: with ``n`` relations the plan runs
#: ``O(n)`` semijoin/join steps, each paying the array kernel's fixed
#: dispatch toll, so the rows available *per relation* must scale with the
#: relation count for the tolls to amortize.  The first few slots' tolls
#: hide under the batch's fixed costs (encode-cache setup, plan dispatch),
#: so the requirement scales with the relation-count *surplus* over
#: :data:`VECTORIZED_NARROW_RELATIONS`: ``auto`` upgrades to the vectorized
#: kernel only when the batch's mean rows per relation reach
#: ``VECTORIZED_RELATION_ROWS_FACTOR × (n − VECTORIZED_NARROW_RELATIONS)``.
#: The pair (32, 4) is fit to measured extremes on the benchmark host:
#: chain-6 at ~190 rows/relation (vectorized wins ~3×) clears 32·2 = 64,
#: chain-8 at ~290 rows/relation clears 32·4 = 128, while flarge-star
#: (12 relations, ~234 rows each — vectorized ran 0.67× compiled) stays
#: under 32·8 = 256 and routes to compiled.
VECTORIZED_RELATION_ROWS_FACTOR = 32

#: Relation-count allowance of the shape term: schemas with at most this
#: many relations are gated by the row floor alone (their few per-slot
#: tolls are indistinguishable from the batch's fixed costs).
VECTORIZED_NARROW_RELATIONS = 4


def _state_rows(state: DatabaseState) -> int:
    return sum(len(relation) for relation in state.relations)


def vectorized_batch_profitable(
    state_count: int, total_rows: int, relation_count: int
) -> bool:
    """The shape-aware ``auto`` gate: is the vectorized kernel worth it?

    True when the batch's mean total rows per state clear the
    :data:`VECTORIZED_MIN_STATE_ROWS` floor **and** the mean rows per
    relation clear :data:`VECTORIZED_RELATION_ROWS_FACTOR` ×
    ``(relation_count − VECTORIZED_NARROW_RELATIONS)`` (wide schemas of
    many small relations lose to the per-join array-setup toll even when
    total rows look large; narrow schemas are floor-only).  This single
    predicate backs the serial seam (:func:`resolve_backend_for`), the
    parallel shard downgrade and the shm zero-copy attach, so the three
    routing points cannot drift.
    """
    if state_count <= 0:
        return False
    mean_rows = total_rows / state_count
    if mean_rows < VECTORIZED_MIN_STATE_ROWS:
        return False
    surplus = relation_count - VECTORIZED_NARROW_RELATIONS
    if relation_count <= 0 or surplus <= 0:
        return True
    return (
        mean_rows / relation_count
        >= VECTORIZED_RELATION_ROWS_FACTOR * surplus
    )


def resolve_backend_for(
    backend: str, states: Sequence[DatabaseState]
) -> str:
    """Resolve ``backend`` with the workload in hand: ``auto`` upgrades to
    the vectorized kernel only when it is profitable.

    :func:`resolve_backend` answers the static question (which kernels can
    run here); this answers the routing question (which kernel *should* run
    this batch).  ``auto`` resolves to ``"vectorized"`` when numpy is
    importable **and** the batch clears the shape-aware gate of
    :func:`vectorized_batch_profitable` — mean state size over the
    :data:`VECTORIZED_MIN_STATE_ROWS` floor *and* enough rows per relation
    to amortize the per-join array toll; otherwise it stays on the compiled
    backend, whose per-row interpreter has no array-construction toll to
    amortize.  Explicit backend names are never second-guessed.
    """
    resolved = resolve_backend(backend)
    if backend != "auto" or resolved != "vectorized":
        return resolved
    if not states:
        return "compiled"
    total_rows = sum(_state_rows(state) for state in states)
    relation_count = max(len(state.relations) for state in states)
    return (
        "vectorized"
        if vectorized_batch_profitable(len(states), total_rows, relation_count)
        else "compiled"
    )


def _subtree_intervals(
    order: Sequence[int], parent: Dict[int, Optional[int]]
) -> Tuple[Dict[int, int], Dict[int, int]]:
    """Preorder index and subtree extent per node, in one traversal.

    ``order`` is a DFS preorder, so the subtree of ``node`` occupies the
    contiguous index interval ``[tin[node], tout[node]]``; "does attribute
    ``a`` occur outside this subtree?" becomes an O(1) extent test.
    """
    tin = {node: position for position, node in enumerate(order)}
    tout = dict(tin)
    for node in reversed(order):
        mother = parent[node]
        if mother is not None and tout[node] > tout[mother]:
            tout[mother] = tout[node]
    return tin, tout


class JoinStep:
    """One step of the bottom-up join: merge ``node`` into ``mother``.

    ``projection`` is the early-projection schema to apply to the node's
    relation before the join, or ``None`` when the relation already carries
    exactly the attributes worth keeping.
    """

    __slots__ = ("node", "mother", "projection")

    def __init__(
        self, node: int, mother: int, projection: Optional[RelationSchema]
    ) -> None:
        self.node = node
        self.mother = mother
        self.projection = projection

    def describe(self) -> str:
        """Human readable description of the step."""
        if self.projection is None:
            return f"R{self.mother} := R{self.mother} ⋈ R{self.node}"
        return (
            f"R{self.mother} := R{self.mother} ⋈ "
            f"π_{self.projection.to_notation()}(R{self.node})"
        )


class PreparedQuery:
    """A compiled plan for ``π_X(⋈ D)`` over a tree schema.

    Instances are immutable and are normally obtained from
    :meth:`repro.engine.analysis.AnalyzedSchema.prepare`, which memoizes them
    per ``(target, root)`` and shares the schema's cached qual tree.  Direct
    construction is also supported (and is what ``yannakakis(..., tree=...)``
    uses when handed an explicit qual tree).
    """

    __slots__ = (
        "_schema",
        "_target",
        "_root",
        "_tree",
        "_order",
        "_semijoin_steps",
        "_join_steps",
        "_final_projection",
        "_compiled",
        "_vectorized",
    )

    def __init__(
        self,
        schema: DatabaseSchema,
        target: Union[RelationSchema, Iterable[Attribute]],
        *,
        tree: Optional[QualGraph] = None,
        root: int = 0,
    ) -> None:
        if not isinstance(target, RelationSchema):
            target = RelationSchema(target)
        if not target <= schema.attributes:
            raise SchemaError("the target must be contained in U(D)")
        object.__setattr__(self, "_schema", schema)
        object.__setattr__(self, "_target", target)
        object.__setattr__(self, "_root", root)
        object.__setattr__(self, "_compiled", None)
        object.__setattr__(self, "_vectorized", None)

        if len(schema) == 0:
            object.__setattr__(self, "_tree", None)
            object.__setattr__(self, "_order", ())
            object.__setattr__(self, "_semijoin_steps", ())
            object.__setattr__(self, "_join_steps", ())
            object.__setattr__(self, "_final_projection", RelationSchema(()))
            return

        if tree is None:
            from .analysis import analyze

            tree = analyze(schema).qual_tree
            if tree is None:
                raise NotATreeSchemaError(
                    "Yannakakis' algorithm applies to tree schemas; the schema is cyclic"
                )
        object.__setattr__(self, "_tree", tree)

        order, parent = rooted_orientation(tree, root=root)
        object.__setattr__(self, "_order", order)
        object.__setattr__(
            self,
            "_semijoin_steps",
            full_reducer_semijoins(schema, tree=tree, root=root),
        )

        # Early-projection schedule for the bottom-up join.  The attribute
        # set each node carries when it reaches its mother is a function of
        # the schema and target only, so the projections are decided here,
        # once, instead of per execution.
        tin, tout = _subtree_intervals(order, parent)
        attr_min: Dict[Attribute, int] = {}
        attr_max: Dict[Attribute, int] = {}
        for node in order:
            position = tin[node]
            for attribute in schema[node].attributes:
                if attribute not in attr_min:
                    attr_min[attribute] = attr_max[attribute] = position
                else:
                    if position < attr_min[attribute]:
                        attr_min[attribute] = position
                    if position > attr_max[attribute]:
                        attr_max[attribute] = position
        target_attributes = target.attributes
        carried: Dict[int, frozenset] = {
            node: frozenset(schema[node].attributes) for node in order
        }
        join_steps: List[JoinStep] = []
        for node in reversed(order):
            mother = parent[node]
            if mother is None:
                continue
            attributes = carried[node]
            low, high = tin[node], tout[node]
            keep = frozenset(
                attribute
                for attribute in attributes
                if attribute in target_attributes
                or attr_min[attribute] < low
                or attr_max[attribute] > high
            )
            projection = RelationSchema(keep) if keep != attributes else None
            join_steps.append(JoinStep(node, mother, projection))
            carried[mother] = carried[mother] | keep
        object.__setattr__(self, "_join_steps", tuple(join_steps))

        final = RelationSchema(carried[order[0]] & set(target.attributes))
        if final != target:
            # The `keep` sets always retain target attributes, so a mismatch
            # indicates an internal error rather than a user mistake.
            raise SchemaError(
                "internal error: Yannakakis result schema does not match the target"
            )
        object.__setattr__(self, "_final_projection", final)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("PreparedQuery is immutable")

    # -- inspection -----------------------------------------------------------

    @property
    def schema(self) -> DatabaseSchema:
        """The schema ``D`` the plan was compiled for."""
        return self._schema

    @property
    def target(self) -> RelationSchema:
        """The projection target ``X``."""
        return self._target

    @property
    def root(self) -> int:
        """The relation index the qual tree was rooted at."""
        return self._root

    @property
    def tree(self) -> Optional[QualGraph]:
        """The qual tree the plan joins along (``None`` for the empty schema)."""
        return self._tree

    @property
    def semijoin_steps(self) -> Tuple[SemijoinStep, ...]:
        """The full-reducer semijoin program, in execution order."""
        return self._semijoin_steps

    @property
    def join_steps(self) -> Tuple[JoinStep, ...]:
        """The bottom-up join schedule with early projections, in order."""
        return self._join_steps

    @property
    def final_projection(self) -> RelationSchema:
        """The projection applied to the root relation after the joins."""
        return self._final_projection

    @property
    def compiled(self) -> CompiledPlan:
        """The interned-value compiled plan, built lazily and cached.

        The plan owns interning dictionaries and an encoding cache shared by
        every state this query executes (keyed per plan, not per state); see
        :mod:`repro.relational.compiled` for the lifecycle.  Building is
        idempotent, so a benign duplicate under concurrency is harmless.
        """
        plan = self._compiled
        if plan is None:
            plan = compile_plan(self)
            object.__setattr__(self, "_compiled", plan)
        return plan

    @property
    def vectorized(self) -> VectorizedPlan:
        """The array-backed vectorized plan, built lazily and cached.

        Like :attr:`compiled`, the plan owns its interner and per-slot
        encoding cache, shared by every state this query executes.  It is
        built against the numpy kernel when numpy imports and against the
        stdlib ``array`` row-program fallback otherwise; see
        :mod:`repro.relational.vectorized`.
        """
        plan = self._vectorized
        if plan is None:
            plan = vectorize_plan(self)
            object.__setattr__(self, "_vectorized", plan)
        return plan

    def reset_compiled(self) -> None:
        """Drop the compiled and vectorized plans (interners and encoding
        caches included).

        Long-running serving processes can use this to release interning
        dictionaries that accumulated values from states no longer in
        rotation; the next execution rebuilds the plan it needs.  (Since the
        interner cap landed, plans also bound themselves: see
        ``CompiledPlan.max_interned_values`` and the epoch notes in
        :mod:`repro.relational.compiled`.)
        """
        object.__setattr__(self, "_compiled", None)
        object.__setattr__(self, "_vectorized", None)

    def plan_spec(self):
        """The picklable :class:`~repro.engine.parallel.PlanSpec` identifying
        this query across process boundaries.

        The spec captures the *ordered* relation tuple, target, root and the
        compiled backend's knobs — everything a worker needs to rebuild the
        plan via :func:`repro.engine.analysis.prepared_from_spec`.  Workers
        re-derive the canonical qual tree for the schema, so a query built
        with an explicit non-canonical ``tree=`` has no spec: the rebuilt
        plan would compute the same answers (``π_X(⋈ D)`` does not depend on
        the join tree) but with different step accounting, and the parallel
        layer promises accounting parity with serial execution — such
        queries are rejected here rather than silently re-planned.
        """
        from .analysis import analyze
        from .parallel import PlanSpec

        if self._tree is not None:
            canonical = analyze(self._schema).qual_tree
            if canonical is None or (
                self._tree is not canonical
                and self._tree.edges != canonical.edges
            ):
                raise ValueError(
                    "this query was planned over an explicit non-canonical "
                    "qual tree; it cannot be shipped to worker processes "
                    "(workers rebuild plans over the schema's canonical "
                    "tree, which would change the run accounting)"
                )
        return PlanSpec.of(self)

    def describe(self) -> str:
        """The whole plan as human-readable program text."""
        lines = [
            f"prepared query: π_{self._target.to_notation() or '{}'}(⋈ {self._schema})"
        ]
        for step in self._semijoin_steps:
            lines.append(f"  {step.describe()}")
        for step in self._join_steps:
            lines.append(f"  {step.describe()}")
        lines.append(
            f"  answer := π_{self._final_projection.to_notation() or '{}'}"
            f"(R{self._root})"
        )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"PreparedQuery(schema={self._schema.to_notation()!r}, "
            f"target={self._target.to_notation()!r}, "
            f"semijoins={len(self._semijoin_steps)}, joins={len(self._join_steps)})"
        )

    # -- execution ------------------------------------------------------------

    def execute(self, state: DatabaseState, *, backend: str = "auto") -> YannakakisRun:
        """Run the compiled plan against a state; no planning happens here.

        ``backend`` selects the execution kernel: ``"auto"`` (the default)
        routes through the array-backed vectorized kernel of
        :mod:`repro.relational.vectorized` when numpy is importable *and*
        the state is large enough to amortize the array toll
        (:data:`VECTORIZED_MIN_STATE_ROWS` total rows), and the
        interned-value columnar backend of :mod:`repro.relational.compiled`
        otherwise; ``"vectorized"``/``"compiled"`` request those kernels
        explicitly and ``"classic"`` forces the object-tuple
        :class:`~repro.relational.relation.Relation` operators.  All
        backends return the same :class:`~repro.relational.yannakakis.
        YannakakisRun` — result, semijoin/join counts and intermediate-size
        accounting — and the run's ``backend`` field reports which one ran.
        """
        resolved = resolve_backend_for(backend, (state,))
        if resolved == "parallel":
            raise ValueError(
                "the parallel backend batches states across processes; "
                "use execute_many(states, backend='parallel') or a "
                "ParallelExecutor"
            )
        if state.schema is not self._schema and state.schema != self._schema:
            raise SchemaError("the state is for a different schema than the query")
        if len(self._schema) == 0:
            return YannakakisRun(
                result=Relation.nullary_true(),
                semijoin_count=0,
                join_count=0,
                max_intermediate_size=1,
                backend=resolved,
            )
        if resolved == "vectorized":
            return self.vectorized.execute_state(state)
        if resolved == "compiled":
            # Single executions skip the stats object; execute_many attaches
            # a shared ExecutionStats to every run of the batch.
            return self.compiled.execute_state(state)
        return self._execute_classic(state)

    def _execute_classic(self, state: DatabaseState) -> YannakakisRun:
        """The object-tuple reference executor (also the property-test oracle)."""
        relations = list(state.relations)
        for step in self._semijoin_steps:
            relations[step.target] = relations[step.target].semijoin(
                relations[step.source]
            )
        max_intermediate = max((len(relation) for relation in relations), default=0)

        join_count = 0
        for step in self._join_steps:
            child = relations[step.node]
            if step.projection is not None:
                child = child.project(step.projection)
                if len(child) > max_intermediate:
                    max_intermediate = len(child)
            joined = relations[step.mother].natural_join(child)
            join_count += 1
            if len(joined) > max_intermediate:
                max_intermediate = len(joined)
            relations[step.mother] = joined

        final = relations[self._root].project(self._final_projection)
        if len(final) > max_intermediate:
            max_intermediate = len(final)
        return YannakakisRun(
            result=final,
            semijoin_count=len(self._semijoin_steps),
            join_count=join_count,
            max_intermediate_size=max_intermediate,
            backend="classic",
        )

    def execute_many(
        self,
        states: Iterable[DatabaseState],
        *,
        backend: str = "auto",
        workers: Optional[int] = None,
        executor: Optional[object] = None,
        shard_timeout: Optional[float] = None,
        max_retries: Optional[int] = None,
        failure_policy: Optional[str] = None,
        transport: Optional[str] = None,
    ) -> List[YannakakisRun]:
        """Execute the plan against each state, amortizing the planning cost.

        With a serial columnar backend (``"auto"`` picks the vectorized
        kernel when numpy is importable and the batch's mean state size
        clears :data:`VECTORIZED_MIN_STATE_ROWS`, the compiled backend
        otherwise) this is a true batch: all states share the plan's
        interning dictionaries and per-slot encoding cache, so a slot whose
        rows repeat across states is encoded — and its key indexes built —
        once for the whole batch.  The
        returned runs all carry one shared
        :class:`~repro.relational.compiled.ExecutionStats` describing the
        batch; with ``backend="classic"`` each state is executed
        independently by the object-tuple operators.

        ``backend="parallel"`` shards the batch across a process pool
        (:mod:`repro.engine.parallel`): ``workers`` sets the pool width
        (default: one per CPU, clamped by ``REPRO_PARALLEL_MAX_WORKERS``) and
        a one-shot pool is spawned and torn down around the call.  Long-lived
        serving should instead pass a reusable
        :class:`~repro.engine.parallel.ParallelExecutor` as ``executor``
        (``workers`` must then be left unset — the pool already has a width),
        which amortizes both the pool spawn and the workers' per-spec plan
        compilation across calls.  Results come back in input order and every
        run reports ``backend="parallel"`` with one merged
        :class:`~repro.engine.parallel.ParallelStats` for the batch.

        The robustness knobs — ``shard_timeout`` (seconds per shard attempt),
        ``max_retries`` (resubmissions before bisection) and
        ``failure_policy`` (``"raise"`` or ``"degrade"``) — apply to parallel
        execution only and are rejected for the serial backends, as is
        ``transport`` (``"pickle"`` or ``"shm"``), which picks how states
        cross the process boundary.  When an ``executor`` is supplied they
        override its configured defaults for this batch; left ``None``, the
        executor's (or the environment's) defaults apply.  Under
        ``failure_policy="degrade"`` the returned list contains ``None`` at
        quarantined input positions; see :mod:`repro.engine.parallel` and
        ``docs/robustness.md``.

        One-shot parallel batches (no ``executor``) are cost-routed: an
        empty batch returns immediately and a *degenerate* batch — a single
        unique state, or states with no rows at all — runs on the in-process
        compiled backend (still retagged ``backend="parallel"``) instead of
        paying a pool spawn that would dwarf the work.  Pass an ``executor``
        to pin execution to a real pool unconditionally.
        """
        resolved = resolve_backend(backend)
        # Validate the *raw* backend string: "auto" may opt into the pool an
        # executor provides, but an explicit "compiled"/"classic" request
        # must not be silently upgraded to parallel execution.
        if executor is not None and backend not in ("parallel", "auto"):
            raise ValueError("executor= requires backend='parallel' (or 'auto')")
        if executor is not None or resolved == "parallel":
            overrides = {}
            if shard_timeout is not None:
                overrides["shard_timeout"] = shard_timeout
            if max_retries is not None:
                overrides["max_retries"] = max_retries
            if failure_policy is not None:
                overrides["failure_policy"] = failure_policy
            if transport is not None:
                overrides["transport"] = transport
            if executor is not None:
                if workers is not None:
                    raise ValueError(
                        "workers= cannot be combined with executor=; the "
                        "executor's pool width applies"
                    )
                return executor.execute_many(self, states, **overrides)
            state_list = list(states)
            if not state_list:
                # An empty batch must not spawn a pool (or even import the
                # parallel machinery) just to discover there is no work.
                return []
            from .parallel import ParallelExecutor, execute_in_process
            from .routing import RoutingPolicy

            # Robustness overrides pin the batch to a real pool: the
            # in-process shortcut could honor neither shard_timeout (no
            # supervisor above the serving process) nor degrade-mode
            # quarantine semantics.
            if (
                not overrides
                and RoutingPolicy().is_degenerate(state_list)
            ):
                return execute_in_process(self, state_list)
            with ParallelExecutor(workers=workers) as pool:
                return pool.execute_many(self, state_list, **overrides)
        if workers is not None:
            raise ValueError("workers= requires backend='parallel'")
        if (
            shard_timeout is not None
            or max_retries is not None
            or failure_policy is not None
            or transport is not None
        ):
            raise ValueError(
                "shard_timeout=/max_retries=/failure_policy=/transport= "
                "require backend='parallel'; the serial backends run "
                "in-process"
            )
        state_list = states if isinstance(states, list) else list(states)
        resolved = resolve_backend_for(backend, state_list)
        if resolved == "vectorized" and len(self._schema) > 0:
            return self.vectorized.execute_batch(state_list)
        if resolved == "compiled" and len(self._schema) > 0:
            return self.compiled.execute_batch(state_list)
        return [self.execute(state, backend=resolved) for state in state_list]
