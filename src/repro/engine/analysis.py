"""The engine façade: analyze a schema once, reuse the analysis everywhere.

The paper's central economy is that schema *structure* — the GYO residue,
qual tree, acyclicity classification, canonical connections — is a function
of the schema alone and can be computed once and reused across many queries
and database states.  :func:`analyze` returns an :class:`AnalyzedSchema`, an
immutable façade that lazily computes and caches each of those artifacts;
:meth:`AnalyzedSchema.prepare` compiles a
:class:`~repro.engine.prepared.PreparedQuery` whose
:meth:`~repro.engine.prepared.PreparedQuery.execute` pays zero re-planning
cost per database state.

``analyze`` itself memoizes analyses in a bounded LRU keyed by the schema, so
the classic free functions (:func:`repro.hypergraph.gyo.gyo_reduce`,
:func:`repro.tableau.canonical.canonical_connection`,
:func:`repro.core.query_planning.plan_join_query`,
:func:`repro.relational.yannakakis.yannakakis`) can delegate here and share
one analysis per schema instead of recomputing per call.

See ``docs/api.md`` for the analyze → prepare → execute lifecycle, the cache
semantics and the old-function → new-method migration table.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..exceptions import NotATreeSchemaError, SchemaError
from ..hypergraph.acyclicity import is_beta_acyclic, is_gamma_acyclic
from ..hypergraph.berge import is_berge_acyclic
from ..hypergraph.gyo import GYOReduction, GYOTrace
from ..hypergraph.join_tree import find_qual_tree
from ..hypergraph.parsing import parse_schema
from ..hypergraph.qual_graph import QualGraph
from ..hypergraph.schema import Attribute, DatabaseSchema, RelationSchema
from ..tableau.canonical import (
    CanonicalConnectionResult,
    canonical_connection_result,
)
from ..tableau.minimize import MinimizationResult
from ..tableau.tableau import Tableau, standard_tableau as build_standard_tableau
from ..treefication.single import SingleTreefication, single_relation_treefication
from .prepared import PreparedQuery

__all__ = [
    "AnalyzedSchema",
    "analyze",
    "analysis_cache_size",
    "clear_analysis_cache",
    "peek_analysis",
    "prepared_from_spec",
]

_UNSET = object()

#: Cap on each per-target memo (GYO traces, canonical connections, join
#: plans, prepared queries) within one analysis.  Bounds the memory a
#: long-running process can accumulate by querying one schema with many
#: distinct targets; artifacts are immutable, so eviction never invalidates
#: a reference a caller already holds.
_PER_TARGET_CACHE_MAX = 128

TargetLike = Union[RelationSchema, Iterable[Attribute]]


def _as_relation_schema(target: TargetLike) -> RelationSchema:
    return target if isinstance(target, RelationSchema) else RelationSchema(target)


#: One coarse lock guards every cache-structure operation (the module LRU and
#: the per-analysis memos).  It is held only around dict manipulation — never
#: during analysis work — so concurrent threads may compute the same immutable
#: artifact twice (benign; last write wins) but can never corrupt an LRU or
#: hit a get/move_to_end race.
_CACHE_LOCK = threading.Lock()


def _memo_put(cache: OrderedDict, key, value) -> None:
    """Insert into a per-target LRU memo, evicting the oldest past the cap."""
    with _CACHE_LOCK:
        cache[key] = value
        if len(cache) > _PER_TARGET_CACHE_MAX:
            cache.popitem(last=False)


def _memo_get(cache: OrderedDict, key):
    with _CACHE_LOCK:
        value = cache.get(key)
        if value is not None:
            cache.move_to_end(key)
        return value


class AnalyzedSchema:
    """An immutable façade over a schema's structural analysis.

    Every accessor is lazy and memoized: nothing is computed until asked for,
    and nothing is computed twice.  Per-target artifacts (canonical
    connections, join plans, prepared queries) are memoized by target
    attribute set, so answering many queries over one schema shares the
    underlying tableau minimizations and qual-tree searches.
    """

    __slots__ = (
        "_schema",
        "_gyo_traces",
        "_qual_tree",
        "_flags",
        "_treefication",
        "_tableaux",
        "_connections",
        "_join_plans",
        "_prepared",
        "_cost_probes",
        "_cyclic_choices",
        "_cyclic_prepared",
    )

    def __init__(self, schema: Union[DatabaseSchema, Iterable[RelationSchema]]) -> None:
        if not isinstance(schema, DatabaseSchema):
            schema = DatabaseSchema(schema)
        object.__setattr__(self, "_schema", schema)
        object.__setattr__(self, "_gyo_traces", OrderedDict())
        object.__setattr__(self, "_qual_tree", _UNSET)
        object.__setattr__(self, "_flags", {})
        object.__setattr__(self, "_treefication", None)
        object.__setattr__(self, "_tableaux", OrderedDict())
        object.__setattr__(self, "_connections", OrderedDict())
        object.__setattr__(self, "_join_plans", OrderedDict())
        object.__setattr__(self, "_prepared", OrderedDict())
        object.__setattr__(self, "_cost_probes", OrderedDict())
        object.__setattr__(self, "_cyclic_choices", OrderedDict())
        object.__setattr__(self, "_cyclic_prepared", OrderedDict())

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("AnalyzedSchema is immutable")

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"AnalyzedSchema({self._schema.to_notation()!r})"

    # -- schema-level structure ------------------------------------------------

    @property
    def schema(self) -> DatabaseSchema:
        """The analyzed schema ``D``."""
        return self._schema

    def gyo_trace(self, sacred: TargetLike = ()) -> GYOTrace:
        """``GR(D, X)`` with its full operation trace, memoized per ``X``."""
        key = _as_relation_schema(sacred)
        trace = _memo_get(self._gyo_traces, key)
        if trace is None:
            reducer = GYOReduction(self._schema, key)
            reducer.run_to_completion()
            trace = reducer.trace()
            _memo_put(self._gyo_traces, key, trace)
        return trace

    def gyo_residue(self, sacred: TargetLike = ()) -> DatabaseSchema:
        """``GR(D, X)`` — just the reduced schema."""
        return self.gyo_trace(sacred).result

    @property
    def qual_tree(self) -> Optional[QualGraph]:
        """A qual tree (join tree) for ``D``, or ``None`` when ``D`` is cyclic."""
        if self._qual_tree is _UNSET:
            object.__setattr__(self, "_qual_tree", find_qual_tree(self._schema))
        return self._qual_tree

    @property
    def is_tree_schema(self) -> bool:
        """Corollary 3.1: ``D`` is a tree schema iff ``U(GR(D)) = ∅``."""
        return self.gyo_trace().is_fully_reduced_to_empty

    @property
    def is_cyclic(self) -> bool:
        """``D`` is cyclic iff it is not a tree schema."""
        return not self.is_tree_schema

    # α-acyclicity is a synonym for the tree-schema property.
    is_alpha_acyclic = is_tree_schema

    def _flag(self, name: str, compute) -> bool:
        value = self._flags.get(name)
        if value is None:
            value = compute(self._schema)
            self._flags[name] = value
        return value

    @property
    def is_beta_acyclic(self) -> bool:
        """β-acyclicity: every subset of ``D`` is a tree schema."""
        return self._flag("beta", is_beta_acyclic)

    @property
    def is_gamma_acyclic(self) -> bool:
        """γ-acyclicity (Section 5.2)."""
        return self._flag("gamma", is_gamma_acyclic)

    @property
    def is_berge_acyclic(self) -> bool:
        """Berge acyclicity of the bipartite incidence graph."""
        return self._flag("berge", is_berge_acyclic)

    @property
    def treefication(self) -> SingleTreefication:
        """Corollary 3.2: add ``U(GR(D))`` to treefy ``D`` (cached).

        Delegates to :func:`single_relation_treefication`, whose GYO
        reduction routes back through this analysis's cached trace, so
        classifying the schema and treefying it share one reduction.
        """
        if self._treefication is None:
            object.__setattr__(
                self, "_treefication", single_relation_treefication(self._schema)
            )
        return self._treefication

    # -- per-target artifacts --------------------------------------------------

    def standard_tableau(
        self, target: TargetLike, universe: Optional[TargetLike] = None
    ) -> Tableau:
        """``Tab(D, X)``, memoized per ``(X, universe)``.

        The interned-symbol compiled form
        (:meth:`~repro.tableau.tableau.Tableau.compiled`) is cached on the
        returned instance, so every consumer of the memo — containment
        checks, minimization, canonical-connection read-off — shares one
        compilation.
        """
        target_schema = _as_relation_schema(target)
        universe_schema = None if universe is None else _as_relation_schema(universe)
        key = (target_schema, universe_schema)
        tableau = _memo_get(self._tableaux, key)
        if tableau is None:
            tableau = build_standard_tableau(
                self._schema, target_schema, universe=universe_schema
            )
            _memo_put(self._tableaux, key, tableau)
        return tableau

    def tableau_minimization(
        self, target: TargetLike, universe: Optional[TargetLike] = None
    ) -> MinimizationResult:
        """The minimization of ``Tab(D, X)``, memoized per ``(X, universe)``.

        This is the same minimization the canonical connection and join plan
        for ``X`` are built from, so Lemma 3.5 / Theorem 3.3 style checks and
        serving paths share one core computation per sacred set.
        """
        return self.canonical_connection_result(target, universe=universe).minimization

    def canonical_connection_result(
        self, target: TargetLike, universe: Optional[TargetLike] = None
    ) -> CanonicalConnectionResult:
        """``CC(D, X)`` with its full derivation, memoized per ``(X, universe)``."""
        target_schema = _as_relation_schema(target)
        universe_schema = None if universe is None else _as_relation_schema(universe)
        key = (target_schema, universe_schema)
        result = _memo_get(self._connections, key)
        if result is None:
            result = canonical_connection_result(
                self._schema,
                target_schema,
                universe=universe_schema,
                tableau=self.standard_tableau(target_schema, universe=universe_schema),
            )
            _memo_put(self._connections, key, result)
        return result

    def canonical_connection(
        self, target: TargetLike, universe: Optional[TargetLike] = None
    ) -> DatabaseSchema:
        """``CC(D, X)`` — the canonical connection of the query ``(D, X)``."""
        return self.canonical_connection_result(target, universe=universe).connection

    def join_plan(self, target: TargetLike):
        """The minimal join-then-project plan for ``(D, X)``, memoized per ``X``.

        Returns a :class:`repro.core.query_planning.JoinPlan` built from the
        cached canonical connection (Theorem 4.1 / Corollary 4.1).
        """
        from ..core.query_planning import JoinPlan

        target_schema = _as_relation_schema(target)
        plan = _memo_get(self._join_plans, target_schema)
        if plan is None:
            connection = self.canonical_connection(target_schema)
            used: List[int] = []
            for relation in connection.relations:
                for index, base in enumerate(self._schema.relations):
                    if relation <= base:
                        used.append(index)
                        break
            irrelevant = tuple(
                index for index in range(len(self._schema)) if index not in set(used)
            )
            plan = JoinPlan(
                schema=self._schema,
                target=target_schema,
                sub_schema=connection,
                irrelevant_relations=irrelevant,
            )
            _memo_put(self._join_plans, target_schema, plan)
        return plan

    def prepare(self, target: TargetLike, *, root: int = 0) -> PreparedQuery:
        """Compile ``π_X(⋈ D)`` into a :class:`PreparedQuery`, memoized per
        ``(X, root)``.

        The memo is also the plan→compiled-plan map: each cached
        :class:`PreparedQuery` lazily builds and holds its
        :class:`~repro.relational.compiled.CompiledPlan` (interning
        dictionaries, positional step programs, encoding cache), so every
        caller that prepares the same ``(X, root)`` shares one compiled
        backend — and one interner — per analysis.  Eviction from this LRU
        is what ultimately releases a compiled plan's interner; callers
        holding a reference can drop theirs early with
        :meth:`PreparedQuery.reset_compiled`.

        Raises :class:`~repro.exceptions.SchemaError` when ``X ⊄ U(D)`` and
        :class:`~repro.exceptions.NotATreeSchemaError` when ``D`` is cyclic.
        """
        target_schema = _as_relation_schema(target)
        key = (target_schema, root)
        prepared = _memo_get(self._prepared, key)
        if prepared is None:
            # Match the historical yannakakis() behavior: a bad target is
            # reported before cyclicity.
            if not target_schema <= self._schema.attributes:
                raise SchemaError("the target must be contained in U(D)")
            tree = None
            if len(self._schema) > 0:
                tree = self.qual_tree
                if tree is None:
                    raise NotATreeSchemaError(
                        "Yannakakis' algorithm applies to tree schemas; "
                        "the schema is cyclic"
                    )
            prepared = PreparedQuery(
                self._schema, target_schema, tree=tree, root=root
            )
            _memo_put(self._prepared, key, prepared)
        return prepared

    def cyclic_projection(self, target: TargetLike):
        """The selected tree projection for ``(D, X)``, memoized per ``X``.

        Returns the :class:`~repro.engine.cyclic.ProjectionChoice` the
        cyclic pipeline executes through — candidate generation reuses the
        cached GYO residue (Corollary 3.2's ``U(GR(D))``) and the layered
        search of :mod:`repro.treeproj.tree_projection`, then shrinks toward
        the Greco–Scarcello minimality criterion.  Also defined for tree
        schemas (the projection degenerates to the reduction of ``D ∪ (X)``),
        though :meth:`prepare` is the right entry point there.
        """
        from .cyclic import choose_tree_projection

        target_schema = _as_relation_schema(target)
        choice = _memo_get(self._cyclic_choices, target_schema)
        if choice is None:
            choice = choose_tree_projection(self._schema, target_schema)
            _memo_put(self._cyclic_choices, target_schema, choice)
        return choice

    def prepare_cyclic(self, target: TargetLike, *, root: Optional[int] = None):
        """Compile ``π_X(⋈ D)`` over a *cyclic* schema into a
        :class:`~repro.engine.cyclic.CyclicPreparedQuery`, memoized per
        ``(X, root)``.

        The treefication counterpart of :meth:`prepare`: plans a tree
        projection once (:meth:`cyclic_projection`), lowers the Theorem 6.1
        guard-semijoin construction into a frozen prologue, and reuses a
        tree-schema :class:`~repro.engine.prepared.PreparedQuery` over the
        projection's nodes — so cyclic queries serve through the same
        compiled/vectorized/parallel substrate.  ``root`` indexes a
        projection node for the inner bottom-up join; left ``None`` it
        defaults to a node covering ``X`` (the solver's choice).  Also
        accepts tree schemas for uniformity, but :meth:`prepare` is cheaper
        there (no prologue).  Raises
        :class:`~repro.exceptions.SchemaError` when ``X ⊄ U(D)``.
        """
        from .cyclic import CyclicPreparedQuery, _default_root

        target_schema = _as_relation_schema(target)
        if not target_schema <= self._schema.attributes:
            raise SchemaError("the target must be contained in U(D)")
        choice = self.cyclic_projection(target_schema)
        if root is None:
            root = _default_root(choice.projection.relations, target_schema)
        key = (target_schema, root)
        prepared = _memo_get(self._cyclic_prepared, key)
        if prepared is None:
            prepared = CyclicPreparedQuery(
                self._schema, target_schema, root=root, choice=choice
            )
            _memo_put(self._cyclic_prepared, key, prepared)
        return prepared

    # -- cost probes -----------------------------------------------------------

    def cached_cost_probe(
        self, target: TargetLike, *, root: int = 0, backend: str = "compiled"
    ) -> Optional[float]:
        """The cached per-row cost for ``(target, root, backend)``, or ``None``.

        Written by the adaptive router (:mod:`repro.engine.routing`): the
        probe times a few serial executions once per plan and parks the
        per-row seconds here, so every later routing decision for the same
        plan — across services, batches and threads — is a dictionary lookup.
        ``backend`` keys the serial kernel that was timed (``"compiled"`` or
        ``"vectorized"``): their per-row costs differ by the very speedups
        the vectorized kernel exists for, so one must never stand in for the
        other.
        """
        key = (_as_relation_schema(target), root, backend)
        return _memo_get(self._cost_probes, key)

    def store_cost_probe(
        self,
        target: TargetLike,
        per_row_s: float,
        *,
        root: int = 0,
        backend: str = "compiled",
    ) -> None:
        """Cache a measured per-row cost for ``(target, root, backend)`` (see
        :meth:`cached_cost_probe`; last write wins under concurrency)."""
        key = (_as_relation_schema(target), root, backend)
        _memo_put(self._cost_probes, key, float(per_row_s))

    # -- summaries -------------------------------------------------------------

    def classification(self) -> Dict[str, bool]:
        """All four acyclicity flags in one dictionary."""
        return {
            "alpha_acyclic": self.is_tree_schema,
            "beta_acyclic": self.is_beta_acyclic,
            "gamma_acyclic": self.is_gamma_acyclic,
            "berge_acyclic": self.is_berge_acyclic,
        }


# -- the module-level analysis cache -------------------------------------------
#
# Keyed by the *ordered* tuple of relation schemas, not the DatabaseSchema:
# schema equality is multiset equality, but every analysis artifact (GYO
# survivor/parent maps, qual-tree nodes, semijoin programs, join plans) is
# positional, so schemas that are equal as multisets yet ordered differently
# must not share an analysis.

_ANALYSIS_CACHE: OrderedDict[Tuple[RelationSchema, ...], AnalyzedSchema] = (
    OrderedDict()
)
_ANALYSIS_CACHE_MAX = 256


def analyze(
    schema: Union[DatabaseSchema, str, Iterable[RelationSchema]],
    *,
    attribute_separator: Optional[str] = None,
    catalog=None,
) -> AnalyzedSchema:
    """Analyze a schema, reusing a cached :class:`AnalyzedSchema` when possible.

    ``schema`` may be a :class:`~repro.hypergraph.schema.DatabaseSchema`, an
    iterable of relation schemas, or schema notation text (parsed with
    ``attribute_separator``, as on the command line).  Analyses are cached in
    a bounded LRU keyed by the schema value, so repeated calls — including
    the ones made internally by ``gyo_reduce``/``canonical_connection``/
    ``plan_join_query``/``yannakakis`` — share one façade per schema.

    ``catalog`` consults a persistent :class:`~repro.engine.catalog.PlanCatalog`
    on an LRU miss (accepted forms: a catalog instance, a directory path, or
    ``None`` for the ``REPRO_CATALOG_DIR`` default when that variable is
    set).  A verified on-disk record restores a pre-populated analysis
    without recomputing anything; catalog misses, corruption and I/O
    failures all silently fall through to fresh analysis — the catalog can
    make this function faster but never make it fail.
    """
    if isinstance(schema, str):
        schema = parse_schema(schema, attribute_separator=attribute_separator)
    elif not isinstance(schema, DatabaseSchema):
        schema = DatabaseSchema(schema)
    key = schema.relations
    with _CACHE_LOCK:
        analysis = _ANALYSIS_CACHE.get(key)
        if analysis is not None:
            _ANALYSIS_CACHE.move_to_end(key)
            return analysis
    analysis = None
    # The import is gated so catalog-free processes never pay for the
    # persistence machinery on this hot path.
    if catalog is not None or os.environ.get("REPRO_CATALOG_DIR"):
        from .catalog import resolve_catalog

        resolved = resolve_catalog(catalog)
        if resolved is not None:
            analysis = resolved.load(schema)
    if analysis is None:
        analysis = AnalyzedSchema(schema)
    with _CACHE_LOCK:
        existing = _ANALYSIS_CACHE.get(key)
        if existing is not None:
            return existing
        _ANALYSIS_CACHE[key] = analysis
        if len(_ANALYSIS_CACHE) > _ANALYSIS_CACHE_MAX:
            _ANALYSIS_CACHE.popitem(last=False)
    return analysis


def peek_analysis(
    schema: Union[DatabaseSchema, Iterable[RelationSchema]],
) -> Optional[AnalyzedSchema]:
    """The cached analysis for ``schema``, or ``None`` — never creates one.

    This is what the substrate-level free functions (``gyo_reduce``,
    ``canonical_connection``) use: they reuse an analysis when one exists but
    fall back to a direct computation on a miss, so brute-force loops over
    thousands of *candidate* schemas (treefication search, tree-projection
    search) neither flood the LRU nor evict the live analyses that serving
    paths depend on.
    """
    if not isinstance(schema, DatabaseSchema):
        schema = DatabaseSchema(schema)
    key = schema.relations
    with _CACHE_LOCK:
        analysis = _ANALYSIS_CACHE.get(key)
        if analysis is not None:
            _ANALYSIS_CACHE.move_to_end(key)
        return analysis


def prepared_from_spec(spec, *, catalog=None):
    """Rebuild the prepared query a :class:`~repro.engine.parallel.PlanSpec`
    identifies — a :class:`PreparedQuery`, or a
    :class:`~repro.engine.cyclic.CyclicPreparedQuery` for cyclic specs —
    through the analysis LRU.

    The spec's ``relations`` tuple is the *ordered* relation tuple — exactly
    the key the analysis cache uses — so the round-trip hits every layer of
    caching: an unpickled spec in a process whose LRU already holds the
    schema's analysis gets back the **same** :class:`AnalyzedSchema`, and its
    per-``(target, root)`` memo then returns the same ``PreparedQuery``
    object (compiled plan included).  This is what makes worker-side plan
    rebuilds pay analysis at most once per (worker, spec): the first call
    computes, every later call is two cache lookups.

    With a catalog in play (the ``catalog`` argument, or ``REPRO_CATALOG_DIR``
    inherited from the parent process) the miss path gets a third tier: the
    analysis is first sought on disk, and after preparing, its artifacts are
    **stored back** — so a worker respawned after a crash, or a whole fresh
    process, skips re-analysis entirely.  The store is fingerprint-skipped
    when the on-disk record is already current, so the per-call overhead on
    a warm path is one in-memory comparison.

    Cyclic specs (``spec.cyclic``) rebuild through
    :meth:`AnalyzedSchema.prepare_cyclic`, landing in the same per-target
    memos — a worker that served a cyclic plan once never re-plans its tree
    projection.
    """
    resolved = None
    if catalog is not None or os.environ.get("REPRO_CATALOG_DIR"):
        from .catalog import resolve_catalog

        resolved = resolve_catalog(catalog)
    analysis = analyze(DatabaseSchema(spec.relations), catalog=resolved)
    if getattr(spec, "cyclic", False):
        prepared = analysis.prepare_cyclic(spec.target, root=spec.root)
    else:
        prepared = analysis.prepare(spec.target, root=spec.root)
    if resolved is not None:
        resolved.store(analysis)
    return prepared


def clear_analysis_cache() -> None:
    """Drop every cached analysis (used by benchmarks to time cold paths)."""
    with _CACHE_LOCK:
        _ANALYSIS_CACHE.clear()


def analysis_cache_size() -> int:
    """Number of schemas currently held by the analysis cache."""
    with _CACHE_LOCK:
        return len(_ANALYSIS_CACHE)
